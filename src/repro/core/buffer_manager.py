"""Buffer (address) management: free list and per-output packet queues.

The paper deliberately separates this from the pipelined memory proper
("the buffer (address) management circuits are independent of the pipelined
memory", §3.3, pointing at [Kate94]/[KVES95] for Telegraphos' choice).  We
implement the standard organization those reports describe: a hardware free
list of buffer addresses plus one FIFO list of ready-to-depart packets per
outgoing link.

A packet of ``q`` quanta (§3.5: packet sizes are integer multiples of the
buffer-width quantum) occupies ``q`` buffer addresses, one per wave of its
store chain; they are allocated and released together.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class BufferFullError(Exception):
    """Allocation was attempted with too few free addresses."""


@dataclass(slots=True)
class PacketRecord:
    """Bookkeeping for one packet occupying one or more buffer addresses."""

    uid: int
    src: int
    dst: int
    addrs: list[int]
    arrival_cycle: int  # head word arrived on the input link
    write_init_cycle: int  # store wave (chain) initiation
    read_init_cycle: int = -1  # departure wave initiation (-1 = still queued)

    @property
    def addr(self) -> int:
        """First (or only) buffer address — the single-quantum common case."""
        return self.addrs[0]

    @property
    def quanta(self) -> int:
        return len(self.addrs)


class BufferManager:
    """Free list + per-output FIFO queues over ``addresses`` buffer slots."""

    def __init__(self, addresses: int, n_out: int) -> None:
        if addresses < 1:
            raise ValueError(f"need >= 1 buffer address, got {addresses}")
        self.addresses = addresses
        self.n_out = n_out
        self._free: deque[int] = deque(range(addresses))
        self.queues: list[deque[PacketRecord]] = [deque() for _ in range(n_out)]
        self._by_addr: dict[int, PacketRecord] = {}
        self.peak_occupancy = 0

    # -- allocation -----------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def occupancy(self) -> int:
        return self.addresses - len(self._free)

    def allocate(
        self, uid: int, src: int, dst: int, arrival: int, cycle: int, quanta: int = 1
    ) -> PacketRecord:
        """Take ``quanta`` free addresses for an arriving packet and queue it."""
        if quanta < 1:
            raise ValueError(f"packets occupy >= 1 address, got {quanta}")
        if len(self._free) < quanta:
            # Name the full geometry: a capacity drop shows free ~ 0 with
            # queues spread out, a policy drop never reaches here — the
            # distinction must be triageable from the log line alone.
            raise BufferFullError(
                f"need {quanta} addresses for packet {uid} at cycle {cycle}, "
                f"only {len(self._free)} of {self.addresses} free "
                f"({len(self.queues[dst])} packets queued for output {dst})"
            )
        addrs = [self._free.popleft() for _ in range(quanta)]
        rec = PacketRecord(
            uid=uid,
            src=src,
            dst=dst,
            addrs=addrs,
            arrival_cycle=arrival,
            write_init_cycle=cycle,
        )
        for a in addrs:
            self._by_addr[a] = rec
        self.queues[dst].append(rec)
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return rec

    def head(self, dst: int) -> PacketRecord | None:
        """Next packet to depart on output ``dst`` (FIFO order), if any."""
        q = self.queues[dst]
        return q[0] if q else None

    def start_departure(self, dst: int, cycle: int) -> PacketRecord:
        """Dequeue the head of output ``dst`` as its read wave initiates."""
        q = self.queues[dst]
        if not q:
            raise ValueError(f"output {dst} has no queued packet at cycle {cycle}")
        rec = q.popleft()
        rec.read_init_cycle = cycle
        return rec

    def release(self, rec: PacketRecord) -> None:
        """Return all the packet's addresses (read chain completed)."""
        for a in rec.addrs:
            if self._by_addr.get(a) is not rec:
                raise ValueError(f"double release of address {a}")
            del self._by_addr[a]
            self._free.append(a)

    def queued_packets(self) -> int:
        return sum(len(q) for q in self.queues)
