"""Output queueing — one buffer per outgoing link (paper figure 2, left).

Each output buffer must accept, in the worst case, ``n_in`` simultaneous
arrivals per slot and drain one cell per slot: the high-throughput-buffer
requirement that motivates the whole paper.  Behaviour-wise it delivers
optimal link utilization; its memory-utilization disadvantage versus shared
buffering is the [HlKa88] comparison reproduced by bench E3.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class OutputQueued(SlottedSwitch):
    """Per-output FIFO queues of capacity ``capacity`` cells each.

    When several cells arrive for the same output in one slot they enqueue in
    a uniformly random order (ties between inputs carry no meaning in the
    slotted model); if the queue fills mid-slot the excess cells are dropped
    — the [HlKa88] finite-buffer loss model.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        capacity: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.queues: list[deque[Cell]] = [deque() for _ in range(n_out)]
        self.rng = make_rng(seed)
        self._pending: list[Cell] = []  # arrivals of the current slot

    def _admit(self, cell: Cell) -> bool:
        # Buffer-space accounting must consider the whole slot's arrivals in
        # random order; defer the decision to _select_departures via _pending.
        self._pending.append(cell)
        return True  # provisional; drops are re-recorded below

    def _select_departures(self) -> list[Cell | None]:
        # Randomize same-slot arrival order, then enqueue with capacity check.
        if self._pending:
            order = self.rng.permutation(len(self._pending))
            for k in order:
                cell = self._pending[int(k)]
                q = self.queues[cell.dst]
                if self.capacity is not None and len(q) >= self.capacity:
                    self._record_late_drop(cell)
                else:
                    q.append(cell)
            self._pending = []
        return [q.popleft() if q else None for q in self.queues]

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)
