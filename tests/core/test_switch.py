"""Functional tests of the pipelined-memory switch (paper §3.2-§3.4)."""

import pytest

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    Priority,
    RenewalPacketSource,
    SaturatingSource,
    TracePacketSource,
)


def _trace_switch(n=2, addresses=8, schedule=None, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=addresses, **cfg_kwargs)
    src = TracePacketSource(
        n_out=n, packet_words=cfg.packet_words, schedule=schedule or {}
    )
    return PipelinedSwitch(cfg, src), cfg


class TestConfig:
    def test_default_depth_is_2n(self):
        assert PipelinedSwitchConfig(n=4).depth == 8

    def test_packet_words_equals_depth(self):
        cfg = PipelinedSwitchConfig(n=4, depth=8)
        assert cfg.packet_words == 8

    def test_buffer_bits(self):
        cfg = PipelinedSwitchConfig(n=8, addresses=256, width_bits=16)
        assert cfg.buffer_bits == 64 * 1024  # Telegraphos III: 64 Kbit

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelinedSwitchConfig(n=0)
        with pytest.raises(ValueError):
            PipelinedSwitchConfig(n=2, addresses=0)

    def test_credit_default(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64, credit_flow=True)
        assert cfg.credits_per_input == 16


class TestSinglePacket:
    def test_minimum_cut_through_latency_is_2_cycles(self):
        """Head arrives cycle c, WRITE_CT wave at c+1, head on the wire at
        c+2 — the §3.3 fast path."""
        sw, cfg = _trace_switch(schedule={0: [(0, 1)]})
        sw.run(cfg.depth * 4)
        assert sw.stats.delivered == 1
        assert sw.ct_latency.mean == 2.0
        assert sw.cut_through_waves == 1
        assert sw.plain_read_waves == 0

    def test_payload_integrity(self):
        sw, cfg = _trace_switch(schedule={0: [(0, 1)], 1: [(3, 0)]})
        sw.run(cfg.depth * 6)
        assert sw.stats.delivered == 2
        # Arrival: the sink-vs-sent comparison happens inside the switch and
        # raises on mismatch; reaching here with 2 deliveries is the check.

    def test_packet_stored_and_forwarded_when_output_busy(self):
        """Two packets to the same output: the second is buffered (plain
        write + later read), and FIFO order holds."""
        sw, cfg = _trace_switch(schedule={0: [(0, 1)], 1: [(1, 1)]})
        sw.run(cfg.depth * 8)
        assert sw.stats.delivered == 2
        assert sw.cut_through_waves >= 1
        assert sw.plain_read_waves >= 1
        first, second = sw.sinks[1].delivered
        assert first[1] < second[1]

    def test_cut_through_disabled_forces_store_and_forward(self):
        sw_ct, cfg = _trace_switch(schedule={0: [(0, 1)]})
        sw_sf, _ = _trace_switch(schedule={0: [(0, 1)]}, cut_through=False)
        sw_ct.run(cfg.depth * 6)
        sw_sf.run(cfg.depth * 6)
        assert sw_ct.ct_latency.mean == 2.0
        # Store-and-forward: the read wave may only start after the write
        # wave completes (B cycles later).
        assert sw_sf.ct_latency.mean >= cfg.depth + 1
        assert sw_sf.cut_through_waves == 0


class TestModerateLoad:
    def test_no_loss_and_full_delivery(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.5, seed=1)
        sw = PipelinedSwitch(cfg, src)
        sw.run(30_000)
        sw.drain()
        assert sw.stats.dropped == 0
        assert sw.stats.delivered == sw.stats.offered
        assert sw.is_empty()

    def test_utilization_tracks_offered_load(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.6, seed=2)
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 3000
        sw.run(60_000)
        assert sw.link_utilization == pytest.approx(0.6, abs=0.03)

    def test_per_output_fifo_order(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.7, seed=3)
        sw = PipelinedSwitch(cfg, src)
        sw.run(20_000)
        for sink in sw.sinks:
            heads = [head for _, head, _ in sink.delivered]
            assert heads == sorted(heads)

    def test_wave_accounting(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.5, seed=4)
        sw = PipelinedSwitch(cfg, src)
        sw.run(20_000)
        sw.drain()
        # Every delivered packet used exactly one departure wave, and every
        # accepted packet exactly one store wave (CT counts as both).
        assert sw.cut_through_waves + sw.plain_read_waves == sw.stats.delivered
        assert sw.cut_through_waves + sw.write_waves == sw.stats.accepted


class TestSaturation:
    def test_high_utilization_at_full_load(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=5)
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 4000
        sw.run(40_000)
        assert sw.link_utilization > 0.95

    def test_drop_tail_losses_bounded(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=16)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=6)
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 2000
        sw.run(30_000)
        assert sw.stats.dropped > 0
        assert sw.stats.offered == sw.stats.accepted + sw.stats.dropped

    def test_single_hot_output_serves_line_rate(self):
        """All inputs target output 0: it must stay 100% busy, others idle."""
        cfg = PipelinedSwitchConfig(n=4, addresses=16)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, dests=[0, 0, 0, 0])
        sw = PipelinedSwitch(cfg, src)
        sw.warmup = 2000
        sw.run(20_000)
        delivered = sw.stats.per_output_delivered
        measured = sw.stats.measured_slots
        assert delivered[0] * cfg.packet_words / measured == pytest.approx(1.0, abs=0.02)
        assert delivered[1] == delivered[2] == delivered[3] == 0


class TestCreditFlow:
    def test_lossless_at_saturation(self):
        """Credit-based flow control (Telegraphos, §4.2): never drops."""
        cfg = PipelinedSwitchConfig(n=4, addresses=32, credit_flow=True)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=7)
        sw = PipelinedSwitch(cfg, src)
        sw.run(30_000)
        assert sw.stats.dropped == 0
        assert sw.overrun_drops == 0

    def test_credits_conserved(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=32, credit_flow=True)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.8, seed=8)
        sw = PipelinedSwitch(cfg, src)
        sw.run(20_000)
        sw.drain()
        assert all(
            s.credits == cfg.credits_per_input for s in sw._inputs
        )  # all credits returned once empty


class TestArbitrationPolicies:
    @pytest.mark.parametrize(
        "priority", [Priority.READS_FIRST, Priority.WRITES_FIRST, Priority.OLDEST_FIRST]
    )
    def test_all_policies_deliver_everything(self, priority):
        cfg = PipelinedSwitchConfig(n=4, addresses=64, priority=priority)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.6, seed=9)
        sw = PipelinedSwitch(cfg, src)
        sw.run(20_000)
        sw.drain()
        assert sw.stats.dropped == 0
        assert sw.stats.delivered == sw.stats.offered

    def test_reads_first_has_lowest_latency(self):
        """The paper's rationale for read priority: delaying departures
        wastes output-link cycles."""
        results = {}
        for priority in (Priority.READS_FIRST, Priority.WRITES_FIRST):
            cfg = PipelinedSwitchConfig(n=8, addresses=128, priority=priority)
            src = RenewalPacketSource(
                n_out=8, packet_words=cfg.packet_words, load=0.8, seed=10
            )
            sw = PipelinedSwitch(cfg, src)
            sw.warmup = 3000
            sw.run(60_000)
            results[priority] = sw.ct_latency.mean
        assert results[Priority.READS_FIRST] <= results[Priority.WRITES_FIRST]
