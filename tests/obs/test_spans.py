"""Span assembly: figure-5 arithmetic over (sampled) lifecycle streams."""

from __future__ import annotations

import json

from repro.core import (
    FastPipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
)
from repro.obs.sampling import SampledEventLog
from repro.obs.spans import (
    STAGES,
    Span,
    chrome_trace_from_spans,
    spans_from_events,
    spans_jsonl,
)
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry
from repro.telemetry.events import Event


def _run(rate=1.0, seed=1, cycles=600, droppy=False):
    reset_packet_ids()
    if droppy:
        cfg = PipelinedSwitchConfig(n=4, addresses=8)
        src = SaturatingSource(n_out=4, packet_words=cfg.packet_words,
                               seed=seed)
    else:
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.6, seed=seed)
    tel = Telemetry.on(events=SampledEventLog(rate, seed=7))
    sw = FastPipelinedSwitch(cfg, src, telemetry=tel)
    sw.run(cycles)
    sw.drain()
    return sw, cfg, tel


class TestAssembly:
    def test_delivered_packet_has_full_lifecycle(self):
        sw, cfg, tel = _run()
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, quanta=cfg.quanta,
                                  horizon=sw.cycle)
        by_uid: dict[int, dict[str, Span]] = {}
        for s in spans:
            by_uid.setdefault(s.uid, {})[s.stage] = s
        delivered = [stages for stages in by_uid.values() if "link" in stages]
        assert delivered
        for stages in delivered:
            assert "latch" in stages
            # a delivered packet was either stored or cut through
            assert "store_wave" in stages or "cut_through" in stages
            if "store_wave" in stages:
                assert "read_wave" in stages and "resident" in stages
                assert (stages["resident"].start
                        == stages["store_wave"].start)
            for s in stages.values():
                assert s.end > s.start
                assert s.end <= sw.cycle

    def test_wave_spans_use_figure5_extent(self):
        sw, cfg, tel = _run()
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, quanta=cfg.quanta,
                                  horizon=sw.cycle)
        full = [s for s in spans
                if s.stage in ("store_wave", "cut_through", "read_wave")
                and s.end < sw.cycle]
        assert full
        assert all(s.end - s.start == cfg.quanta * cfg.depth for s in full)

    def test_dropped_packet_gets_drop_span_with_cause(self):
        sw, cfg, tel = _run(droppy=True)
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, horizon=sw.cycle)
        drops = [s for s in spans if s.stage == "drop"]
        assert drops
        assert all(s.cause for s in drops)
        assert all(s.end == s.start + 1 for s in drops)

    def test_sampled_spans_are_subset_of_full(self):
        _, cfg, tel_full = _run(rate=1.0)
        sw, _, tel_smp = _run(rate=0.25)
        full = spans_from_events(tel_full.events.sorted_events(),
                                 depth=cfg.depth, horizon=sw.cycle)
        sampled = spans_from_events(tel_smp.events.sorted_events(),
                                    depth=cfg.depth, horizon=sw.cycle)
        assert 0 < len(sampled) < len(full)
        assert set(sampled) <= set(full)

    def test_no_horizon_omits_open_stages(self):
        events = [Event(10, "arrive", 1, 0, 2)]  # never admitted
        assert spans_from_events(events, depth=6) == []
        closed = spans_from_events(events, depth=6, horizon=50)
        assert closed == [Span(1, "latch", 10, 50, src=0, dst=2)]

    def test_output_sorted_and_stable(self):
        sw, cfg, tel = _run()
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, horizon=sw.cycle)
        order = {s: i for i, s in enumerate(STAGES)}
        keys = [(s.uid, s.start, order[s.stage]) for s in spans]
        assert keys == sorted(keys)


class TestExports:
    def test_jsonl_round_trips_fields(self):
        sw, cfg, tel = _run(rate=0.25)
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, horizon=sw.cycle)
        lines = spans_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        row = json.loads(lines[0])
        assert {"uid", "stage", "start", "end"} <= set(row)

    def test_chrome_trace_one_thread_per_packet(self):
        sw, cfg, tel = _run(rate=0.25, droppy=True)
        spans = spans_from_events(tel.events.sorted_events(),
                                  depth=cfg.depth, horizon=sw.cycle)
        trace = chrome_trace_from_spans(spans)
        uids = {s.uid for s in spans}
        named = {e["tid"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert named == uids
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(slices) == sum(1 for s in spans if s.stage != "drop")
        assert len(instants) == sum(1 for s in spans if s.stage == "drop")
