"""Tests for the VOQ crossbar schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.switches.schedulers import (
    GreedyMaximal,
    Islip,
    MaxSizeMatching,
    PIM,
    TwoDimRoundRobin,
    _check_matching,
)

ALL_SCHEDULERS = [
    lambda: PIM(iterations=4, seed=1),
    lambda: Islip(iterations=4),
    lambda: TwoDimRoundRobin(),
    lambda: GreedyMaximal(seed=2),
    lambda: MaxSizeMatching(),
]

request_matrices = arrays(
    dtype=bool, shape=st.tuples(st.integers(1, 8), st.integers(1, 8))
)


@pytest.mark.parametrize("factory", ALL_SCHEDULERS)
@given(requests=request_matrices)
@settings(max_examples=30, deadline=None)
def test_always_returns_valid_matching(factory, requests):
    sched = factory()
    pairs = sched.match(requests)
    _check_matching(requests, pairs)  # raises on violation


@pytest.mark.parametrize("factory", ALL_SCHEDULERS)
def test_full_requests_yield_perfect_matching(factory):
    """With every VOQ nonempty, any sane scheduler matches all ports.

    iSLIP needs a few slots for its pointers to desynchronize from the
    cold all-zeros state, so schedulers get a short warm-up first.
    """
    n = 6
    requests = np.ones((n, n), dtype=bool)
    sched = factory()
    for _ in range(2 * n):
        pairs = sched.match(requests)
    assert len(pairs) == n


@pytest.mark.parametrize("factory", ALL_SCHEDULERS)
def test_empty_requests_yield_empty_matching(factory):
    requests = np.zeros((4, 4), dtype=bool)
    assert factory().match(requests) == []


@pytest.mark.parametrize("factory", ALL_SCHEDULERS)
def test_diagonal_requests_fully_served(factory):
    n = 5
    requests = np.eye(n, dtype=bool)
    pairs = factory().match(requests)
    assert sorted(pairs) == [(i, i) for i in range(n)]


@given(requests=request_matrices)
@settings(max_examples=30, deadline=None)
def test_maxsize_upper_bounds_greedy(requests):
    best = len(MaxSizeMatching().match(requests))
    greedy = len(GreedyMaximal(seed=3).match(requests))
    assert greedy <= best
    # Maximal matching is at least half of maximum.
    assert greedy >= (best + 1) // 2


def test_pim_convergence_with_iterations():
    """More PIM iterations never hurt (on average) — [AOST93]'s log n + 3/4."""
    rng = np.random.default_rng(4)
    sizes = {k: 0 for k in (1, 2, 4)}
    for trial in range(200):
        requests = rng.random((8, 8)) < 0.5
        for k in sizes:
            sizes[k] += len(PIM(iterations=k, seed=trial).match(requests))
    assert sizes[1] <= sizes[2] <= sizes[4]


def test_islip_pointer_desynchronization():
    """Under persistent full load iSLIP reaches a perfect rotating schedule."""
    n = 4
    sched = Islip(iterations=1)
    requests = np.ones((n, n), dtype=bool)
    matched = [len(sched.match(requests)) for _ in range(50)]
    # After the pointers desynchronize, every slot matches all n ports.
    assert all(m == n for m in matched[-20:])


def test_2drr_rotates_diagonals():
    sched = TwoDimRoundRobin()
    requests = np.ones((3, 3), dtype=bool)
    first = sched.match(requests)
    second = sched.match(requests)
    assert first != second  # the diagonal order rotates slot to slot
    assert len(first) == len(second) == 3


def test_iteration_validation():
    with pytest.raises(ValueError):
        PIM(iterations=0)
    with pytest.raises(ValueError):
        Islip(iterations=0)
