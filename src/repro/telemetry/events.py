"""Structured packet-lifecycle event log.

Every packet a switch touches produces a small, fixed vocabulary of events:

========== ============================================== ==================
kind       emitted when                                   port of record
========== ============================================== ==================
arrive     head word reaches the input latch row          ``src`` (input)
store_wave plain WRITE wave chain admitted at stage 0     ``src`` (input)
cut_through WRITE_CT wave admitted (store + depart)       ``dst`` (output)
read_wave  READ wave chain admitted for a queued packet   ``dst`` (output)
depart     tail word leaves the output link               ``dst`` (output)
drop       packet lost, with a machine-readable cause     ``src`` (input)
========== ============================================== ==================

The checked :class:`~repro.core.switch.PipelinedSwitch` emits these as the
words actually move; :class:`~repro.core.fastpath.FastPipelinedSwitch`
derives the identical events in closed form from each wave's admission
cycle.  ``tests/core/test_telemetry_equivalence.py`` pins the two streams
to each other, which is a far finer equivalence than end-of-run totals.

Event ordering *within a cycle* is an implementation detail (the fast
kernel computes some consequences earlier than the checked model observes
them), so comparisons and exports use :meth:`EventLog.sorted_events`.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- event kinds ------------------------------------------------------------
ARRIVE = "arrive"
STORE_WAVE = "store_wave"
CUT_THROUGH = "cut_through"
READ_WAVE = "read_wave"
DEPART = "depart"
DROP = "drop"

WAVE_KINDS = (STORE_WAVE, CUT_THROUGH, READ_WAVE)

# -- drop causes ------------------------------------------------------------
# The paper's drop-tail switch loses a packet in exactly two ways, both
# "the buffer stayed full for the whole store window":
DROP_HEAD_OVERRUN = "head_overrun"  # next packet's head reuses input latch 0
DROP_QUANTUM_OVERRUN = "quantum_overrun"  # own next quantum reuses latch 0 (§3.5)
# Slot-level models reject at admission time:
DROP_BUFFER_FULL = "buffer_full"
# The knockout switch's concentrator discards losers beyond its l paths:
DROP_KNOCKOUT = "knockout"
# An admission policy (repro.policy) refused the packet at arrival:
DROP_POLICY = "policy"

#: The complete drop taxonomy, in canonical display order.  Every
#: ``DROP_*`` cause constant in this module must appear here — exporters
#: and the DRC registry-coverage lint (DRC122) treat this tuple as the
#: map of record.
DROP_CAUSES = (
    DROP_HEAD_OVERRUN,
    DROP_QUANTUM_OVERRUN,
    DROP_BUFFER_FULL,
    DROP_KNOCKOUT,
    DROP_POLICY,
)

# Which port identifies an event of each kind (input or output side).
_INPUT_SIDE = frozenset((ARRIVE, STORE_WAVE, DROP))


@dataclass(frozen=True, slots=True)
class Event:
    """One lifecycle event.  ``aux`` carries the head-departure cycle on
    ``depart`` events (the tail cycle is ``cycle`` itself); -1 elsewhere."""

    cycle: int
    kind: str
    uid: int
    src: int = -1
    dst: int = -1
    cause: str = ""
    aux: int = -1

    @property
    def port(self) -> int:
        """The port this event is accounted to (input or output side)."""
        return self.src if self.kind in _INPUT_SIDE else self.dst

    def as_dict(self) -> dict[str, object]:
        d: dict[str, object] = {"cycle": self.cycle, "kind": self.kind,
                                "uid": self.uid}
        if self.src >= 0:
            d["src"] = self.src
        if self.dst >= 0:
            d["dst"] = self.dst
        if self.cause:
            d["cause"] = self.cause
        if self.aux >= 0:
            d["head"] = self.aux
        return d


class EventLog:
    """Append-only in-memory event stream."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, cycle: int, kind: str, uid: int, src: int = -1,
             dst: int = -1, cause: str = "", aux: int = -1) -> None:
        self.events.append(Event(cycle, kind, uid, src, dst, cause, aux))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def sorted_events(self) -> list[Event]:
        """Events in canonical (cycle, kind, uid) order — the comparable
        form; see the module docstring on intra-cycle ordering."""
        return sorted(self.events, key=lambda e: (e.cycle, e.kind, e.uid))

    # -- aggregations -------------------------------------------------------
    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def per_port_counts(self) -> dict[tuple[str, int], int]:
        """(kind, port) -> count, port being each kind's port of record."""
        out: dict[tuple[str, int], int] = {}
        for e in self.events:
            key = (e.kind, e.port)
            out[key] = out.get(key, 0) + 1
        return out

    def drop_taxonomy(self) -> dict[str, int]:
        """Drop cause -> count."""
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind == DROP:
                out[e.cause] = out.get(e.cause, 0) + 1
        return out

    def lifecycle(self, uid: int) -> list[Event]:
        """All events of one packet, in cycle order."""
        return sorted((e for e in self.events if e.uid == uid),
                      key=lambda e: (e.cycle, e.kind))


class NullEventLog:
    """No-op stand-in used when event collection is disabled."""

    enabled = False
    events: tuple[Event, ...] = ()

    def emit(self, cycle: int, kind: str, uid: int, src: int = -1,
             dst: int = -1, cause: str = "", aux: int = -1) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def sorted_events(self) -> list[Event]:
        return []

    def counts_by_kind(self) -> dict[str, int]:
        return {}

    def per_port_counts(self) -> dict[tuple[str, int], int]:
        return {}

    def drop_taxonomy(self) -> dict[str, int]:
        return {}

    def lifecycle(self, uid: int) -> list[Event]:
        return []


NULL_EVENTS = NullEventLog()
