"""Baseline mode: ``repro lint --diff <rev>`` reports only new findings.

Retro-fitting a stricter lint onto a living codebase is usually blocked
by the existing backlog.  Baseline mode unblocks it: the tree at a git
revision is extracted (``git archive``, no working-tree mutation) into a
temp directory and linted with the *current* engine and rule catalog;
findings present there are accepted as the baseline, and the working
tree only fails for findings *beyond* it.

Comparison is a multiset over ``(path, code, message)`` — line numbers
are deliberately excluded so reflowing a file does not resurrect its
baselined findings, while a second instance of a baselined finding in
the same file still counts as new.
"""

from __future__ import annotations

import subprocess
import tarfile
import tempfile
from collections import Counter
from io import BytesIO
from pathlib import Path
from typing import Iterable

from repro.drc.linter import LintResult, Violation, run_lint

FindingKey = tuple[str, str, str]


def _keys(violations: Iterable[Violation]) -> Counter[FindingKey]:
    return Counter((v.path, v.code, v.message) for v in violations)


def baseline_result(rev: str, root: Path,
                    targets: Iterable[str]) -> LintResult:
    """Lint the tree at ``rev`` (same targets, current rules)."""
    proc = subprocess.run(
        ["git", "archive", rev], cwd=root, capture_output=True, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git archive {rev!r} failed: "
            f"{proc.stderr.decode(errors='replace').strip()}")
    with tempfile.TemporaryDirectory(prefix="drc-baseline-") as tmp:
        tmproot = Path(tmp)
        with tarfile.open(fileobj=BytesIO(proc.stdout)) as tar:
            tar.extractall(tmproot, filter="data")
        present = [t for t in targets if (tmproot / t).exists()]
        return run_lint(present, root=tmproot)


def new_findings(current: LintResult,
                 baseline: LintResult) -> list[Violation]:
    """Current findings in excess of the baseline multiset, sorted."""
    budget = _keys(baseline.all_findings())
    out: list[Violation] = []
    for v in current.all_findings():
        key = (v.path, v.code, v.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            out.append(v)
    return sorted(out, key=lambda v: (v.path, v.line, v.col, v.code))


__all__ = ["baseline_result", "new_findings"]
