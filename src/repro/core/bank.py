"""A single-ported memory bank — one pipeline stage of the shared buffer.

The pipelined memory (paper figure 4) is a row of ``B`` of these banks.  Each
bank is ``w`` bits wide and ``addresses`` deep; being *single-ported* it can
perform at most one access (read or write) per clock cycle.  The port guard
here raises on any same-cycle double access: the paper's central structural
claim — that one wave initiation per cycle never causes a bank conflict —
is enforced, not assumed.
"""

from __future__ import annotations

from repro.sim.packet import Word


class BankConflictError(Exception):
    """A single-ported bank was accessed twice in one clock cycle."""


class MemoryBank:
    """Single-ported storage array: ``addresses`` words of ``w`` bits.

    ``w`` is carried for bookkeeping/area accounting; payloads are Python
    ints standing in for the ``w`` data bits.
    """

    def __init__(self, addresses: int, width_bits: int, name: str = "bank") -> None:
        if addresses < 1:
            raise ValueError(f"bank needs >= 1 address, got {addresses}")
        if width_bits < 1:
            raise ValueError(f"bank width must be >= 1 bit, got {width_bits}")
        self.addresses = addresses
        self.width_bits = width_bits
        self.name = name
        self._cells: list[Word | None] = [None] * addresses
        self._last_access_cycle = -1
        self.reads = 0
        self.writes = 0

    def _guard(self, cycle: int) -> None:
        if cycle == self._last_access_cycle:
            raise BankConflictError(
                f"{self.name}: second access in cycle {cycle} "
                "(single-ported bank)"
            )
        if cycle < self._last_access_cycle:
            raise ValueError(
                f"{self.name}: access at cycle {cycle} after cycle "
                f"{self._last_access_cycle} (time must be monotonic)"
            )
        self._last_access_cycle = cycle

    def write(self, cycle: int, addr: int, word: Word) -> None:
        """Store ``word`` at ``addr``; counts as this cycle's single access."""
        self._guard(cycle)
        if not 0 <= addr < self.addresses:
            raise IndexError(f"{self.name}: address {addr} out of range")
        self._cells[addr] = word
        self.writes += 1

    def read(self, cycle: int, addr: int) -> Word:
        """Fetch the word at ``addr``; counts as this cycle's single access."""
        self._guard(cycle)
        if not 0 <= addr < self.addresses:
            raise IndexError(f"{self.name}: address {addr} out of range")
        word = self._cells[addr]
        if word is None:
            raise ValueError(
                f"{self.name}: read of never-written address {addr} "
                f"in cycle {cycle}"
            )
        self.reads += 1
        return word

    def peek(self, addr: int) -> Word | None:
        """Debug/test access that does not use the port."""
        return self._cells[addr]

    @property
    def capacity_bits(self) -> int:
        return self.addresses * self.width_bits
