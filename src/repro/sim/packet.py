"""Packet and cell objects shared by all simulators in this repository.

Two granularities are used throughout the reproduction:

* *cell level* (``Cell``): the slotted models of :mod:`repro.switches` move one
  fixed-size cell per link per time slot.  This is the granularity of the
  queueing results the paper cites ([KaHM87], [HlKa88], [AOST93]).

* *word level* (``Packet`` carrying :class:`Word` payloads): the RTL-flavoured
  model of :mod:`repro.core` moves one ``w``-bit word per link per clock
  cycle, which is the granularity at which the pipelined memory itself is
  defined (paper figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class _PacketIdCounter:
    """``itertools.count`` with readable position, for checkpoint/restore."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def __iter__(self) -> "_PacketIdCounter":
        return self


_packet_ids = _PacketIdCounter()


def reset_packet_ids() -> None:
    """Restart the global packet id counter (used by tests for determinism)."""
    global _packet_ids
    _packet_ids = _PacketIdCounter()


def packet_id_state() -> int:
    """The next uid the global counter will hand out (checkpointing)."""
    return _packet_ids._next


def set_packet_id_state(value: int) -> None:
    """Restore the global packet id counter to ``value`` (checkpointing)."""
    global _packet_ids
    _packet_ids = _PacketIdCounter(value)


@dataclass(slots=True)
class Cell:
    """A fixed-size cell for slotted (one cell per slot) switch models.

    Attributes
    ----------
    src:
        Input port the cell arrived on.
    dst:
        Output port the cell is destined to.
    arrival_slot:
        Slot in which the cell arrived at the switch input.
    depart_slot:
        Slot in which the cell was put on its output link; ``-1`` until then.
    tag:
        Opaque payload attached by the caller; multistage fabrics
        (:mod:`repro.fabric`) use it to carry the end-to-end cell identity
        through per-stage switch elements.
    uid:
        Globally unique id, used for conservation checks in tests.
    """

    src: int
    dst: int
    arrival_slot: int
    depart_slot: int = -1
    tag: object = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def delay(self) -> int:
        """Slots spent in the switch (departure - arrival)."""
        if self.depart_slot < 0:
            raise ValueError(f"cell {self.uid} has not departed yet")
        return self.depart_slot - self.arrival_slot


@dataclass(slots=True)
class Word:
    """One ``w``-bit word of a packet travelling through the word-level model.

    ``payload`` is an arbitrary integer standing in for the ``w`` data bits;
    the word-level simulator checks exact payload integrity end to end.
    """

    packet_uid: int
    index: int
    payload: int

    def __repr__(self) -> str:  # compact: these appear in bus-conflict errors
        return f"W(p{self.packet_uid}.{self.index}={self.payload:#x})"


@dataclass(slots=True)
class Packet:
    """A multi-word packet for the word-level pipelined-memory model.

    The pipelined memory requires ``len(payload)`` to be a multiple of the
    buffer's pipeline depth (paper section 3.5); the switch model enforces
    this at injection time.
    """

    src: int
    dst: int
    payload: tuple[int, ...]
    arrival_cycle: int = -1  # cycle the *first* word entered the switch
    depart_first_cycle: int = -1  # cycle the first word left on the output link
    depart_last_cycle: int = -1  # cycle the last word left
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_words(self) -> int:
        return len(self.payload)

    def words(self) -> list[Word]:
        """Materialize the packet as a list of :class:`Word` objects."""
        return [Word(self.uid, i, p) for i, p in enumerate(self.payload)]

    @property
    def cut_through_latency(self) -> int:
        """Cycles from head arrival to head departure (paper section 3.4)."""
        if self.depart_first_cycle < 0:
            raise ValueError(f"packet {self.uid} has not departed yet")
        return self.depart_first_cycle - self.arrival_cycle

    @property
    def total_latency(self) -> int:
        """Cycles from head arrival to tail departure."""
        if self.depart_last_cycle < 0:
            raise ValueError(f"packet {self.uid} has not departed yet")
        return self.depart_last_cycle - self.arrival_cycle
