"""Design-rule checker for the pipelined-memory reproduction.

Two halves, one catalog of stable codes:

* **static** (``DRC1xx``) — AST lint rules over the repository source
  (:mod:`repro.drc.rules`, driven by :func:`repro.drc.run_lint` and the
  ``repro lint`` CLI);
* **runtime** (``DRC2xx``) — the opt-in per-cycle invariant sanitizer
  threaded through the kernels (:mod:`repro.drc.sanitizer`, enabled with
  ``--sanitize``).

See ``ARCHITECTURE.md`` §13 for the full rule catalog and the mapping of
sanitizer invariants to paper sections.
"""

from repro.drc.baseline import baseline_result, new_findings
from repro.drc.cache import ENGINE_VERSION, rules_fingerprint
from repro.drc.dataflow import DataflowEngine, ParamEffects
from repro.drc.fixes import FIXABLE_CODES, apply_fixes, fix_source
from repro.drc.graph import ProjectGraph, module_qname
from repro.drc.linter import (
    FORMATTERS,
    SKIP_SENTINEL,
    LintResult,
    discover_files,
    format_json,
    format_sarif,
    format_text,
    parse_suppressions,
    run_lint,
)
from repro.drc.rules import (
    RULES,
    LintModule,
    Project,
    Rule,
    Violation,
    rule_catalog,
)
from repro.drc.sanitizer import (
    ADDRESS_MISMATCH,
    BANK_CONFLICT,
    CONSERVATION,
    DOUBLE_INITIATION,
    INVARIANTS,
    NULL_SANITIZER,
    NullSanitizer,
    Sanitizer,
    SanitizerError,
)

__all__ = [
    "ADDRESS_MISMATCH",
    "BANK_CONFLICT",
    "CONSERVATION",
    "DOUBLE_INITIATION",
    "DataflowEngine",
    "ENGINE_VERSION",
    "FIXABLE_CODES",
    "FORMATTERS",
    "INVARIANTS",
    "LintModule",
    "LintResult",
    "NULL_SANITIZER",
    "NullSanitizer",
    "ParamEffects",
    "Project",
    "ProjectGraph",
    "RULES",
    "Rule",
    "SKIP_SENTINEL",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "apply_fixes",
    "baseline_result",
    "discover_files",
    "fix_source",
    "format_json",
    "format_sarif",
    "format_text",
    "module_qname",
    "new_findings",
    "parse_suppressions",
    "rule_catalog",
    "rules_fingerprint",
    "run_lint",
]
