"""Tests for the discrete-time queueing models."""

import numpy as np
import pytest

from repro.analysis.queueing import (
    batch_pmf,
    convolve_queues,
    md1_wait,
    mean_queue_length,
    output_queue_wait,
    stationary_queue_distribution,
    tail_probability,
)


def test_batch_pmf_is_binomial():
    a = batch_pmf(4, 0.8)
    assert a.sum() == pytest.approx(1.0)
    assert len(a) == 5
    # mean = n * p/n = p
    assert (np.arange(5) * a).sum() == pytest.approx(0.8)


def test_batch_pmf_validation():
    with pytest.raises(ValueError):
        batch_pmf(0, 0.5)
    with pytest.raises(ValueError):
        batch_pmf(4, 1.5)


def test_stationary_distribution_normalized():
    q = stationary_queue_distribution(8, 0.7)
    assert q.sum() == pytest.approx(1.0)
    assert (q >= 0).all()


def test_stationary_rejects_unstable():
    with pytest.raises(ValueError):
        stationary_queue_distribution(8, 1.0)


def test_littles_law_links_mean_queue_and_wait():
    """L = lambda * W ties the numeric distribution to the closed form."""
    n, p = 8, 0.7
    l_avg = mean_queue_length(n, p)
    w = output_queue_wait(n, p)
    assert l_avg == pytest.approx(p * w, rel=0.02)


@pytest.mark.parametrize("p", [0.3, 0.6, 0.9])
def test_karol_wait_approaches_md1(p):
    """output_queue_wait(n -> inf) == M/D/1 wait."""
    assert output_queue_wait(10**6, p) == pytest.approx(md1_wait(p), rel=1e-4)
    assert output_queue_wait(2, p) == pytest.approx(md1_wait(p) / 2, rel=1e-9)


def test_wait_diverges_at_full_load():
    assert output_queue_wait(8, 1.0) == float("inf")
    assert md1_wait(1.0) == float("inf")


def test_convolution_mean_additivity():
    q = stationary_queue_distribution(8, 0.6, truncate=512)
    total = convolve_queues(q, 8)
    mean_single = float(np.arange(len(q)) @ q)
    mean_total = float(np.arange(len(total)) @ total)
    assert mean_total == pytest.approx(8 * mean_single, rel=0.02)


def test_convolution_of_one_is_identity():
    q = stationary_queue_distribution(4, 0.5, truncate=256)
    total = convolve_queues(q, 1)
    assert np.allclose(total[: len(q)], q, atol=1e-9)


def test_tail_probability_edges():
    dist = np.array([0.5, 0.3, 0.2])
    assert tail_probability(dist, -1) == 1.0
    assert tail_probability(dist, 0) == pytest.approx(0.5)
    assert tail_probability(dist, 1) == pytest.approx(0.2)
    assert tail_probability(dist, 5) == 0.0


def test_distribution_matches_simulation():
    """The analytic queue-length distribution matches a simulated output
    queue (same arrivals-then-service convention)."""
    from repro.switches import OutputQueued
    from repro.traffic import BernoulliUniform

    n, p = 8, 0.7
    sw = OutputQueued(n, n, warmup=2000, seed=1)
    sw.sample_occupancy = True
    sw.run(BernoulliUniform(n, n, p, seed=2), 60_000)
    sim_mean = np.mean(sw.occupancy_samples) / n  # per output
    ana_mean = mean_queue_length(n, p)
    assert sim_mean == pytest.approx(ana_mean, rel=0.08)
