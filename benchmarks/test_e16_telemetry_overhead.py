"""E16 — Telemetry overhead guard.

The telemetry layer must be free when it is off: every emission site in the
kernels is gated on a single cached boolean, so the instrumented fast kernel
with default (null) telemetry has to hold the fastpath numbers recorded in
BENCH_fastpath.json.  (A direct A/B against the pre-telemetry kernel put the
disabled-path cost at ~1.5%; the guard allows 5%.)

Wall time on a shared machine is noisy — the fast kernel finishes 150k
cycles in about a second, so a bad scheduling window can halve its apparent
throughput.  The guard therefore samples checked+fast pairs (best-of, early
exit) and accepts if EITHER stays within 5% of the record:

* absolute: fast cycles/sec vs the stored ``fast_cycles_per_sec``, or
* relative: the checked/fast speedup vs the stored ``speedup`` (machine
  slowdown hits both kernels and cancels).

A genuine regression of the null-telemetry path fails both.  If this guard
fails on a different machine, refresh the baseline first:
``PYTHONPATH=src python benchmarks/record.py``.
"""

import json
import time
from pathlib import Path

from conftest import show

from repro.core import (
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
)
from repro.sim.packet import reset_packet_ids
from repro.switches.harness import format_table
from repro.telemetry import Telemetry

BENCH_PATH = Path(__file__).parent / "BENCH_fastpath.json"
BASELINE_EXPERIMENT = "E15 8x8 load 0.6 drop-tail"
MAX_SLOWDOWN = 0.05  # telemetry-disabled may cost at most 5%
CYCLES = 150_000  # must match record.py's horizon: speedup varies with it
MAX_REPEATS = 6


def _throughput(switch_cls, telemetry=None) -> float:
    """cycles/sec for one run on the baseline shape."""
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=8, addresses=128)
    src = RenewalPacketSource(n_out=8, packet_words=cfg.packet_words,
                              load=0.6, seed=1)
    sw = switch_cls(cfg, src, telemetry=telemetry)
    t0 = time.perf_counter()
    sw.run(CYCLES)
    sw.drain()
    elapsed = time.perf_counter() - t0
    return sw.cycle / elapsed


def _experiment():
    stored = json.loads(BENCH_PATH.read_text())
    row = next(r for r in stored["results"]
               if r["experiment"] == BASELINE_EXPERIMENT)
    floor = 1.0 - MAX_SLOWDOWN
    checked = best_fast = best_ratio = 0.0
    for _ in range(MAX_REPEATS):
        checked = max(checked, _throughput(PipelinedSwitch))
        fast = _throughput(FastPipelinedSwitch)
        best_fast = max(best_fast, fast)
        best_ratio = max(best_ratio, best_fast / checked)
        if (best_fast >= floor * row["fast_cycles_per_sec"]
                or best_ratio >= floor * row["speedup"]):
            break
    on = _throughput(FastPipelinedSwitch, Telemetry.on(sample_interval=64))
    return row, checked, best_fast, best_ratio, on


def test_e16_telemetry_overhead(run_once):
    row, checked, off, ratio, on = run_once(_experiment)
    floor = 1.0 - MAX_SLOWDOWN
    rows = [
        ["checked kernel (reference)", round(checked), "-"],
        ["fast, telemetry disabled (default)", round(off),
         f"{ratio:.2f}x (recorded {row['speedup']:.2f}x "
         f"@ {row['fast_cycles_per_sec']} c/s)"],
        ["fast, telemetry enabled", round(on), f"{on / checked:.2f}x"],
    ]
    show(format_table(
        ["E15 8x8 load 0.6 drop-tail", "cycles/sec", "speedup vs checked"],
        rows,
        title="E16: telemetry overhead (disabled path guarded at "
              f"<{MAX_SLOWDOWN:.0%} vs BENCH_fastpath.json)",
    ))
    assert (off >= floor * row["fast_cycles_per_sec"]
            or ratio >= floor * row["speedup"]), (
        f"fast kernel with telemetry disabled reached {off:.0f} cycles/sec "
        f"({ratio:.2f}x over checked) vs the recorded "
        f"{row['fast_cycles_per_sec']} cycles/sec ({row['speedup']:.2f}x) — "
        "more than 5% down on both axes; the null-telemetry path is no "
        "longer free (re-run benchmarks/record.py if on a new machine)"
    )
    # the enabled path is allowed to cost real time, but it must still
    # clearly beat the checked kernel
    assert on > 2.0 * checked
