"""Shared telemetry plumbing for the two pipelined-switch kernels.

:class:`SwitchTelemetryMixin` owns everything that must behave *identically*
in the checked :class:`~repro.core.switch.PipelinedSwitch` and the fast
:class:`~repro.core.fastpath.FastPipelinedSwitch`: metric-handle resolution,
wave/drop emission, and the periodic occupancy sample.  Keeping it in one
place is what makes "checked and fast telemetry are equivalent" a structural
property rather than two copies drifting apart — the kernels only provide
:meth:`_telemetry_state`, their view of occupancy/free/credits at the
sampling instant.

Sampling instant: the *start* of a cycle, before any of the cycle's waves,
deliveries or arrivals.  The checked model reaches that state through its
phase machinery, the fast kernel through its due-queues; the equivalence
tests compare the sampled series element by element.
"""

from __future__ import annotations

from repro.drc.sanitizer import NULL_SANITIZER, NullSanitizer, Sanitizer
from repro.telemetry import (
    CUT_THROUGH,
    DROP,
    NULL_TELEMETRY,
    READ_WAVE,
    STORE_WAVE,
    Telemetry,
)


#: Exposition help text, registered once per attach so every exporter and
#: the live /metrics endpoint emit the same ``# HELP`` lines.
METRIC_HELP: dict[str, str] = {
    "repro_port_arrivals_total":
        "Packets whose head word reached the input latch, per input port.",
    "repro_port_departures_total":
        "Packets whose tail word left the output link, per output port.",
    "repro_port_drops_total":
        "Packets lost, per input port and drop-taxonomy cause.",
    "repro_waves_total":
        "Wave chains admitted, per wave operation (write/write_ct/read).",
    "repro_idle_cycles_total":
        "Cycles in which no wave chain was admitted.",
    "repro_deadline_overrides_total":
        "Write waves admitted under the b-cycle latch deadline (paper 3.5).",
    "repro_bank_accesses_total":
        "Single-ported bank accesses attributed at wave admission, per bank.",
    "repro_buffer_occupancy":
        "Buffer words in use at the last telemetry sample.",
    "repro_buffer_free_addresses":
        "Free buffer addresses at the last telemetry sample.",
    "repro_buffer_peak_occupancy":
        "High-water mark of buffer addresses in use, updated at every "
        "allocation since the start of the run.",
    "repro_ct_latency_cycles":
        "Cut-through latency (head-out minus head-in) in cycles.",
    "repro_input_credits":
        "Input credit level at the last telemetry sample, per input port.",
    "repro_downstream_credits":
        "Downstream credit level at the last telemetry sample, per output.",
    "repro_port_queue_depth":
        "Packets stored awaiting their read wave, per output port.",
    "repro_cycle":
        "Simulation cycle at the last telemetry sample.",
    "repro_trace_ended_cycle":
        "Cycle at which a trace source exhausted and the run terminated "
        "early; absent unless trace replay ended.",
}


class SwitchTelemetryMixin:
    """Collection sites shared by both pipelined-memory kernels."""

    telemetry: Telemetry
    _tel: bool
    sanitizer: Sanitizer | NullSanitizer
    _san: bool

    def attach_sanitizer(self, sanitizer: Sanitizer | None) -> None:
        """Point this switch's invariant hooks at ``sanitizer``.

        Same null-object discipline as :meth:`attach_telemetry`: detached
        (the default) reduces every hook site to one cached boolean test,
        so the sanitizer costs nothing unless ``--sanitize`` asked for it.
        """
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        self._san = self.sanitizer.enabled

    def attach_telemetry(self, telemetry: Telemetry | None) -> None:
        """Point this switch's collection sites at ``telemetry``.

        Must be called before ``run``; a disabled bundle (the default)
        reduces every site to one cached boolean test.  Handles for the
        metric families are resolved once here so the per-cycle path never
        touches the registry.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry.enabled
        if not self._tel:
            return
        m = self.telemetry.metrics
        n, b = self.config.n, self.config.depth
        # Every handle resolved below is re-resolved on (re)attach — restore
        # reattaches telemetry first, so none of them belong in a snapshot.
        # drc: checkpoint-exempt: _m_arrivals, _m_departures, _m_drops, _m_waves
        # drc: checkpoint-exempt: _m_idle, _m_deadline, _m_bank, _m_occupancy
        # drc: checkpoint-exempt: _m_free, _m_peak, _m_cycle, _m_latency, _drop_tax
        for fam, text in METRIC_HELP.items():
            m.describe(fam, text)
        self._m_arrivals = [m.counter("repro_port_arrivals_total", port=i)
                            for i in range(n)]
        self._m_departures = [m.counter("repro_port_departures_total", port=j)
                              for j in range(n)]
        self._m_drops = {}
        self._m_waves = {
            STORE_WAVE: m.counter("repro_waves_total", op="write"),
            CUT_THROUGH: m.counter("repro_waves_total", op="write_ct"),
            READ_WAVE: m.counter("repro_waves_total", op="read"),
        }
        self._m_idle = m.counter("repro_idle_cycles_total")
        self._m_deadline = m.counter("repro_deadline_overrides_total")
        self._m_bank = [m.counter("repro_bank_accesses_total", bank=f"M{k}")
                        for k in range(b)]
        self._m_occupancy = m.gauge("repro_buffer_occupancy")
        self._m_free = m.gauge("repro_buffer_free_addresses")
        self._m_peak = m.gauge("repro_buffer_peak_occupancy")
        self._m_latency = m.histogram("repro_ct_latency_cycles")
        self._m_in_credits = [m.gauge("repro_input_credits", port=i)
                              for i in range(n)]
        self._m_out_credits = [m.gauge("repro_downstream_credits", port=j)
                               for j in range(n)]
        self._m_qdepth = [m.gauge("repro_port_queue_depth", port=j)
                          for j in range(n)]
        self._m_cycle = m.gauge("repro_cycle")
        # Running drop taxonomy (cause -> count), kept alongside the lazily
        # created counters so the series sampler reads it in O(causes).
        # Rebuilt from the registry on re-attach (checkpoint restore), where
        # the counters already carry the pre-snapshot counts.
        tax: dict[str, int] = {}
        for metric in m:
            if metric.name == "repro_port_drops_total":
                cause = dict(metric.labels).get("cause", "")
                tax[cause] = tax.get(cause, 0) + metric.value
        self._drop_tax = tax

    def _queue_depths(self) -> list[int]:
        """Stored-awaiting-read packet count per output port at the
        start-of-cycle sampling instant."""
        raise NotImplementedError

    # -- kernel-provided view ------------------------------------------------
    def _telemetry_state(self) -> tuple[int, int, list[int]]:
        """(buffer occupancy, free addresses, per-input credit levels) at the
        start-of-cycle sampling instant."""
        raise NotImplementedError

    def _peak_occupancy(self) -> int:
        """High-water mark of addresses in use, updated at every allocation.

        Both kernels see releases become visible at the same arbitration
        instants (the fast kernel's ``_free_due`` pops reproduce the checked
        model's phase-3 frees), so tracking the maximum after each write
        admission yields exactly ``BufferManager.peak_occupancy``.
        """
        raise NotImplementedError

    # -- shared emission helpers ----------------------------------------------
    def _emit_wave(self, t: int, kind: str, uid: int, src: int, dst: int) -> None:
        """Telemetry consequences shared by every wave admission.

        Bank access counts are attributed here, at admission — each wave
        chain touches every bank ``quanta`` times, so the closed form is
        exact and identical between the checked and fast kernels (the
        word-level truth of when each bank executes is the WaveTracer's
        job, not the metrics registry's).
        """
        self.telemetry.events.emit(t, kind, uid, src=src, dst=dst)
        self._m_waves[kind].inc()
        q = self.config.quanta
        for bank in self._m_bank:
            bank.inc(q)

    def _emit_drop(self, t: int, i: int, uid: int, dst: int, cause: str) -> None:
        self.telemetry.events.emit(t, DROP, uid, src=i, dst=dst, cause=cause)
        self._drop_tax[cause] = self._drop_tax.get(cause, 0) + 1
        key = (i, cause)
        counter = self._m_drops.get(key)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "repro_port_drops_total", port=i, cause=cause
            )
            self._m_drops[key] = counter
        counter.inc()

    def _emit_trace_ended(self, t: int) -> None:
        """Surface trace-replay exhaustion on the metrics registry.

        Created lazily at the stamping site, not at attach, so runs that
        never exhaust a trace expose no NaN-valued gauge.
        """
        self.telemetry.metrics.gauge("repro_trace_ended_cycle").set(t)

    def _sample_telemetry(self, t: int) -> None:
        occ, free, in_credits = self._telemetry_state()
        self.telemetry.sample(t, occ)
        self._m_occupancy.set(occ)
        self._m_free.set(free)
        self._m_peak.set(self._peak_occupancy())
        self._m_cycle.set(t)
        depths = self._queue_depths()
        for gauge, depth in zip(self._m_qdepth, depths):
            gauge.set(depth)
        for gauge, credits in zip(self._m_in_credits, in_credits):
            gauge.set(credits)
        for gauge, credits in zip(self._m_out_credits, self._out_credits):
            gauge.set(credits)
        series = self.telemetry.series
        if series is not None:
            series.record(t, occ, free, depths, self._drop_tax)
