"""Tests for the wide-memory baseline switch (paper figure 3)."""

import pytest

from repro.core import RenewalPacketSource, SaturatingSource, TracePacketSource
from repro.core.wide import WideMemorySwitch, WideSwitchConfig


def _trace(n=2, schedule=None, **kwargs):
    cfg = WideSwitchConfig(n=n, addresses=32, **kwargs)
    src = TracePacketSource(
        n_out=n, packet_words=cfg.packet_words, schedule=schedule or {}
    )
    return WideMemorySwitch(cfg, src), cfg


def test_config_validation():
    with pytest.raises(ValueError):
        WideSwitchConfig(n=0)
    with pytest.raises(ValueError):
        WideSwitchConfig(n=2, addresses=0)


def test_store_and_forward_latency_is_packet_time_plus_2():
    """Without the cut-through crossbar: the head waits one full packet
    assembly (B cycles) plus memory write/read — B+2 cycles minimum."""
    sw, cfg = _trace(schedule={0: [(0, 1)]})
    sw.run(cfg.packet_words * 6)
    assert sw.stats.delivered == 1
    assert sw.ct_latency.mean == cfg.packet_words + 2


def test_cut_through_crossbar_restores_2_cycle_latency():
    sw, cfg = _trace(schedule={0: [(0, 1)]}, cut_through=True)
    sw.run(cfg.packet_words * 6)
    assert sw.stats.delivered == 1
    assert sw.ct_latency.mean == 2.0
    assert sw.cut_throughs == 1


def test_wide_ct_cannot_cut_through_mid_arrival():
    """Figure 3's limitation: the crossbar path is only usable from the
    head-arrival instant.  A packet whose output frees up mid-arrival goes
    store-and-forward, unlike the pipelined memory."""
    cfg = WideSwitchConfig(n=2, addresses=32, cut_through=True)
    b = cfg.packet_words
    # Packet A (input 0 -> output 1) cuts through at cycle 0.  Packet B
    # (input 1 -> output 1) arrives one cycle later: output busy at its
    # head instant, so B must take the memory path even though the output
    # frees before B's tail has arrived.
    src = TracePacketSource(
        n_out=2, packet_words=b, schedule={0: [(0, 1)], 1: [(1, 1)]}
    )
    sw = WideMemorySwitch(cfg, src)
    sw.run(b * 10)
    assert sw.stats.delivered == 2
    assert sw.cut_throughs == 1
    lat_b = sw.sinks[1].delivered[1][1] - 1  # head-out minus arrival
    assert lat_b >= b  # paid (most of) the store-and-forward penalty


def test_no_loss_at_moderate_load():
    cfg = WideSwitchConfig(n=4, addresses=64, cut_through=True)
    src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.5, seed=1)
    sw = WideMemorySwitch(cfg, src)
    sw.run(30_000)
    sw.drain()
    assert sw.stats.dropped == 0
    assert sw.stats.delivered == sw.stats.offered
    assert sw.is_empty()


def test_saturation_throughput_near_one():
    cfg = WideSwitchConfig(n=4, addresses=64)
    src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=2)
    sw = WideMemorySwitch(cfg, src)
    sw.warmup = 4000
    sw.run(40_000)
    assert sw.link_utilization > 0.9


def test_fifo_per_output():
    cfg = WideSwitchConfig(n=4, addresses=64, cut_through=True)
    src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.8, seed=3)
    sw = WideMemorySwitch(cfg, src)
    sw.run(20_000)
    for sink in sw.sinks:
        heads = [h for _, h, _ in sink.delivered]
        assert heads == sorted(heads)


def test_memory_op_accounting():
    cfg = WideSwitchConfig(n=4, addresses=64)
    src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words, load=0.5, seed=4)
    sw = WideMemorySwitch(cfg, src)
    sw.run(20_000)
    sw.drain()
    # No cut-through configured: every delivered packet was written and read.
    assert sw.memory_writes == sw.memory_reads + len(sw._mem)
    assert sw.cut_throughs == 0
