"""Checkpoint completeness against the *real* repository.

The acceptance bar for DRC151 is mechanical: delete any single codec
field from ``repro.checkpoint`` and the rule must fire for exactly that
attribute.  These tests copy ``src/`` to a temp tree, surgically remove
representative codec reads (one per kernel tier, covering list state,
pipeline state, scalars, and numpy-array state), and lint the mutated
tree.
"""

import shutil
from pathlib import Path

import pytest

from repro.drc import run_lint

REPO = Path(__file__).resolve().parents[2]
SNAPSHOT = "src/repro/checkpoint/snapshot.py"

#: (codec read line fragments to delete, attribute expected to fire);
#: multi-line reads list every line of the expression
FIELD_DELETIONS = [
    (('"chain": [[c, _cw_doc(w)] for c, w in sorted(sw._chain.items())]',),
     "_chain"),
    (('"wire_pipe": [[due, k, _word_doc(w), link]',
      'for due, k, w, link in sw._wire_pipe],'), "_wire_pipe"),
    (('"next_wave_ok": list(sw.next_wave_ok)',), "next_wave_ok"),
    (('"trace_ended_at": sw.trace_ended_at',), "trace_ended_at"),
    (('"busy_until": sw._busy_until',), "_busy_until"),
    (('"free_due": list(sw._free_due)',), "_free_due"),
]


@pytest.fixture(scope="module")
def src_copy(tmp_path_factory):
    root = tmp_path_factory.mktemp("ckpt")
    shutil.copytree(REPO / "src", root / "src")
    return root


def _codes_for(result, code):
    return [v for v in result.all_findings() if v.code == code]


def test_repo_checkpoint_is_complete(src_copy):
    result = run_lint(["src"], root=src_copy)
    assert _codes_for(result, "DRC151") == []
    assert _codes_for(result, "DRC152") == []
    assert _codes_for(result, "DRC153") == []


@pytest.mark.parametrize("needles,attr", FIELD_DELETIONS,
                         ids=[a for _, a in FIELD_DELETIONS])
def test_deleting_codec_field_fires_drc151(src_copy, needles, attr):
    snap = src_copy / SNAPSHOT
    original = snap.read_text()
    lines = original.splitlines(keepends=True)
    kept = [ln for ln in lines if not any(n in ln for n in needles)]
    assert len(kept) < len(lines), f"codec line for {attr!r} not found"
    snap.write_text("".join(kept))
    try:
        result = run_lint(["src"], root=src_copy)
        hits = _codes_for(result, "DRC151")
        assert any(f"{attr!r}" in v.message for v in hits), (
            f"deleting the {attr} codec field must fire DRC151; "
            f"got {[v.message[:60] for v in hits]}")
    finally:
        snap.write_text(original)


def test_subclassing_supported_kernel_fires_drc153(src_copy):
    extra = src_copy / "src/repro/core/custom.py"
    extra.write_text(
        "from repro.core.fastpath import FastPipelinedSwitch\n"
        "\n\n"
        "class TunedSwitch(FastPipelinedSwitch):\n"
        "    pass\n"
    )
    try:
        result = run_lint(["src"], root=src_copy)
        hits = _codes_for(result, "DRC153")
        assert any("TunedSwitch" in v.message for v in hits)
        assert all(v.path == "src/repro/core/custom.py" for v in hits)
    finally:
        extra.unlink()


def test_stale_codec_read_fires_drc152(src_copy):
    snap = src_copy / SNAPSHOT
    original = snap.read_text()
    mutated = original.replace(
        '"trace_ended_at": sw.trace_ended_at',
        '"trace_ended_at": sw.trace_ended_at_legacy', 1)
    assert mutated != original
    snap.write_text(mutated)
    try:
        result = run_lint(["src"], root=src_copy)
        hits = _codes_for(result, "DRC152")
        assert any("trace_ended_at_legacy" in v.message for v in hits)
    finally:
        snap.write_text(original)


def test_checkpoint_exempt_marker_silences_drc151(tmp_path):
    files = {
        "src/repro/core/k.py": (
            "class MiniKernel:\n"
            "    def __init__(self):\n"
            "        self.cycle = 0\n"
            "        self.scratch = []\n"
            "    def run(self, n):\n"
            "        self.cycle = self.cycle + n\n"
            "        self.scratch.append(n)  # drc: checkpoint-exempt\n"
        ),
        "src/repro/checkpoint/snap.py": (
            "from repro.core.k import MiniKernel\n"
            "def _kernel_of(switch):\n"
            "    if type(switch) is MiniKernel:\n"
            "        return 'mini'\n"
            "    raise TypeError\n"
            "def _snap_mini(sw):\n"
            "    return {'cycle': sw.cycle}\n"
            "def snapshot_switch(switch):\n"
            "    kernel = _kernel_of(switch)\n"
            "    if kernel == 'mini':\n"
            "        body = _snap_mini(switch)\n"
            "    else:\n"
            "        body = None\n"
            "    return {'kernel': kernel, 'body': body}\n"
        ),
    }
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    result = run_lint(["src"], root=tmp_path)
    assert [v.code for v in result.all_findings()] == []
    # without the marker the same tree fires
    k = tmp_path / "src/repro/core/k.py"
    k.write_text(k.read_text().replace("  # drc: checkpoint-exempt", ""))
    result = run_lint(["src"], root=tmp_path)
    assert [v.code for v in result.all_findings()] == ["DRC151"]
