"""E11 — Pipelined vs wide-memory shared buffer (paper §3.2, §5.2, fig 3/4).

Two halves:

* **area** (§5.2): adjusted to Telegraphos III parameters, the wide-memory
  peripheral is ~13 mm^2 vs ~9 mm^2 pipelined — "about 30% smaller";
* **function/latency** (§3.2): on identical traffic the wide memory without
  its extra cut-through crossbar pays a full packet time of extra latency;
  with the crossbar it narrows the gap but still cannot cut through a packet
  whose output frees mid-arrival (figure 3's limitation) — the pipelined
  memory gets all of this for free.
"""

from conftest import show

from repro.core import PipelinedSwitch, PipelinedSwitchConfig, RenewalPacketSource
from repro.core.wide import WideMemorySwitch, WideSwitchConfig
from repro.switches.harness import format_table
from repro.vlsi.comparisons import pipelined_vs_wide


def _experiment():
    area = pipelined_vs_wide()
    n, load, cycles = 4, 0.3, 120_000
    b = 2 * n

    def run_pipelined():
        cfg = PipelinedSwitchConfig(n=n, addresses=128)
        sw = PipelinedSwitch(
            cfg, RenewalPacketSource(n_out=n, packet_words=b, load=load, seed=4)
        )
        sw.warmup = 2000
        sw.run(cycles)
        return sw.ct_latency.mean

    def run_wide(ct):
        cfg = WideSwitchConfig(n=n, addresses=128, cut_through=ct)
        sw = WideMemorySwitch(
            cfg, RenewalPacketSource(n_out=n, packet_words=b, load=load, seed=4)
        )
        sw.warmup = 2000
        sw.run(cycles)
        return sw.ct_latency.mean

    latency = {
        "pipelined": run_pipelined(),
        "wide (no CT crossbar)": run_wide(False),
        "wide (CT crossbar)": run_wide(True),
    }
    return area, latency, b


def test_e11_pipelined_vs_wide(run_once):
    area, latency, b = run_once(_experiment)
    show(format_table(
        ["quantity", "pipelined", "wide"],
        [
            ["peripheral area (mm^2)", round(area["pipelined_peripheral_mm2"], 1),
             round(area["wide_peripheral_mm2"], 1)],
            ["buffer total (mm^2)", round(area["pipelined_total_mm2"], 1),
             round(area["wide_total_mm2"], 1)],
        ],
        title="E11a: §5.2 area at Telegraphos III parameters (paper: 9 vs 13 mm^2)",
    ))
    assert abs(area["pipelined_peripheral_mm2"] - 9.0) < 1.0
    assert abs(area["wide_peripheral_mm2"] - 13.0) < 1.5
    assert abs(area["peripheral_saving"] - 0.30) < 0.06

    show(format_table(
        ["organization", "mean cut-through latency (cycles)"],
        [[k, round(v, 2)] for k, v in latency.items()],
        title=f"E11b: latency on identical traffic (4x4, packet = {b} words, load 0.3)",
    ))
    # no crossbar: ~ a packet time worse
    gap = latency["wide (no CT crossbar)"] - latency["pipelined"]
    assert b * 0.7 < gap < b * 1.5
    # with the crossbar: close to pipelined but still >= (fig 3 limitation)
    assert latency["pipelined"] <= latency["wide (CT crossbar)"]
    assert latency["wide (CT crossbar)"] < latency["wide (no CT crossbar)"]
