"""Incremental cache: warm runs must be bit-identical to cold ones at
any ``--jobs``, invalidate along the reverse-import closure, and drop
everything when the rule fingerprint moves."""

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.drc import new_findings, run_lint

_TREE = {
    "src/repro/core/a.py": "LIMIT = 4\n",
    "src/repro/core/b.py": (
        "from repro.core.a import LIMIT\n"
        "def pick(items):\n"
        "    for x in {1, LIMIT}:\n"
        "        yield x\n"
    ),
    "src/repro/core/c.py": "def idle():\n    return 0\n",
}


def _write(root: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)


def _lint(root: Path, *, jobs: int = 1, cache: bool = True):
    cache_dir = root / ".drc-cache" if cache else None
    return run_lint(["src"], root=root, jobs=jobs, cache_dir=cache_dir)


def test_warm_run_is_bit_identical_and_parses_nothing(tmp_path):
    _write(tmp_path, _TREE)
    cold = _lint(tmp_path)
    warm = _lint(tmp_path)
    assert cold.stats["cache"] == "cold"
    assert warm.stats["cache"] == "hit"
    assert warm.files_analyzed == 0
    assert warm.violations == cold.violations
    assert warm.suppressed == cold.suppressed
    assert warm.parse_errors == cold.parse_errors
    assert [v.code for v in cold.violations] == ["DRC104"]


def test_partial_invalidation_follows_reverse_imports(tmp_path):
    _write(tmp_path, _TREE)
    _lint(tmp_path)
    # touching a dependency re-analyzes it AND its importer, nothing else
    (tmp_path / "src/repro/core/a.py").write_text("LIMIT = 5\n")
    warm = _lint(tmp_path)
    assert warm.stats["cache"] == "partial"
    assert warm.files_analyzed == 2
    assert [v.code for v in warm.violations] == ["DRC104"]


def test_independent_module_change_reanalyzes_one_file(tmp_path):
    _write(tmp_path, _TREE)
    _lint(tmp_path)
    (tmp_path / "src/repro/core/c.py").write_text("def idle():\n    return 1\n")
    warm = _lint(tmp_path)
    assert warm.files_analyzed == 1


def test_removed_file_invalidates_importers(tmp_path):
    _write(tmp_path, _TREE)
    cold = _lint(tmp_path)
    (tmp_path / "src/repro/core/c.py").unlink()
    warm = _lint(tmp_path)
    assert warm.files_checked == cold.files_checked - 1
    assert warm.violations == cold.violations


def test_fingerprint_mismatch_forces_cold_run(tmp_path):
    _write(tmp_path, _TREE)
    cold = _lint(tmp_path)
    cache_file = tmp_path / ".drc-cache/cache.json"
    blob = json.loads(cache_file.read_text())
    blob["fingerprint"] = "stale"
    cache_file.write_text(json.dumps(blob))
    warm = _lint(tmp_path)
    assert warm.stats["cache"] == "cold"
    assert warm.files_analyzed == warm.files_checked
    assert warm.violations == cold.violations


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    _write(tmp_path, _TREE)
    cold = _lint(tmp_path)
    (tmp_path / ".drc-cache/cache.json").write_text("{not json")
    warm = _lint(tmp_path)
    assert warm.stats["cache"] == "cold"
    assert warm.violations == cold.violations


def test_jobs_do_not_change_findings(tmp_path):
    files = dict(_TREE)
    for i in range(8):
        files[f"src/repro/core/m{i}.py"] = (
            f"def walk{i}():\n"
            f"    for x in {{1, {i}}}:\n"
            f"        yield x\n"
        )
    _write(tmp_path, files)
    serial = _lint(tmp_path, jobs=1, cache=False)
    parallel = _lint(tmp_path, jobs=2, cache=False)
    assert serial.violations == parallel.violations
    assert serial.suppressed == parallel.suppressed
    assert len(serial.violations) == 9


@settings(max_examples=12, deadline=None)
@given(suppress=st.lists(st.booleans(), min_size=1, max_size=5),
       exempt=st.booleans())
def test_suppressions_round_trip_through_cache_and_diff(suppress, exempt):
    # random mix of `# drc: disable=` / `checkpoint-exempt` markers:
    # warm must equal cold finding-for-finding, and diffing warm
    # against cold must report nothing new
    body = ["def f():"]
    for i, off in enumerate(suppress):
        tail = "  # drc: disable=DRC104" if off else ""
        body.append(f"    for v{i} in {{1, {i}}}:{tail}")
        body.append("        pass")
    marker = "  # drc: checkpoint-exempt" if exempt else ""
    files = {
        "src/repro/core/loops.py": "\n".join(body) + "\n",
        "src/repro/core/k.py": (
            "class MiniKernel:\n"
            "    def __init__(self):\n"
            "        self.cycle = 0\n"
            "        self.scratch = []\n"
            "    def run(self, n):\n"
            "        self.cycle = self.cycle + n\n"
            f"        self.scratch.append(n){marker}\n"
        ),
        "src/repro/checkpoint/snap.py": (
            "from repro.core.k import MiniKernel\n"
            "def _kernel_of(switch):\n"
            "    if type(switch) is MiniKernel:\n"
            "        return 'mini'\n"
            "    raise TypeError\n"
            "def _snap_mini(sw):\n"
            "    return {'cycle': sw.cycle}\n"
            "def snapshot_switch(switch):\n"
            "    kernel = _kernel_of(switch)\n"
            "    if kernel == 'mini':\n"
            "        body = _snap_mini(switch)\n"
            "    else:\n"
            "        body = None\n"
            "    return {'kernel': kernel, 'body': body}\n"
        ),
    }
    with tempfile.TemporaryDirectory(prefix="drc-prop-") as tmp:
        root = Path(tmp)
        _write(root, files)
        cold = _lint(root)
        warm = _lint(root)
        assert warm.stats["cache"] == "hit"
        assert warm.violations == cold.violations
        assert warm.suppressed == cold.suppressed
        expected = {"DRC104": suppress.count(False)}
        if not exempt:
            expected["DRC151"] = 1
        got: dict[str, int] = {}
        for v in warm.violations:
            got[v.code] = got.get(v.code, 0) + 1
        assert got == {k: n for k, n in expected.items() if n}
        assert new_findings(warm, cold) == []
