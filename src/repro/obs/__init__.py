"""Live observability plane on top of :mod:`repro.telemetry`.

Four pieces, all null-object free when off (the kernels' single cached
``_tel`` boolean still gates every collection site, so E16/E18 hold):

* :mod:`repro.obs.sampling` — deterministic packet selection by a
  seed-stable hash of the packet uid, and a :class:`SampledEventLog`
  that filters the lifecycle event stream at emit time.  Because all
  three kernels emit identical event streams, the filtered streams are
  identical by construction.
* :mod:`repro.obs.spans` — pipeline-stage spans (latch, waves,
  residency, link, drop) assembled in closed form from lifecycle
  events, exported as JSONL or through the Chrome/Perfetto path.
* :mod:`repro.obs.series` — a bounded ring buffer of time-series rows
  (occupancy, per-port queue depth, drop-taxonomy counts, wall stamps
  for cycles/s) recorded at the telemetry sample instant, exported as
  JSONL/CSV and carried through :mod:`repro.checkpoint` snapshots.
* :mod:`repro.obs.server` / :mod:`repro.obs.top` — a Prometheus
  ``/metrics`` HTTP endpoint aggregating registries across sweep
  workers, and the ``repro top`` live dashboard that scrapes it.

:mod:`repro.obs.promparse` is the shared mini promtool: it parses and
validates the text exposition format for the dashboard, the aggregator
and the format-validity tests.
"""

from repro.obs.sampling import SampledEventLog, is_sampled, packet_hash, sample_threshold
from repro.obs.series import SeriesRing
from repro.obs.spans import Span, chrome_trace_from_spans, spans_from_events, spans_jsonl

__all__ = [
    "SampledEventLog",
    "packet_hash",
    "sample_threshold",
    "is_sampled",
    "SeriesRing",
    "Span",
    "spans_from_events",
    "spans_jsonl",
    "chrome_trace_from_spans",
]
