from repro.sim.rng import make_rng


def launch(pool):
    rng = make_rng(3)

    def task():
        return int(rng.integers(10))

    return pool.submit(task)
