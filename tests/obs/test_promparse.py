"""The mini promtool: what it accepts, what it rejects, and round-trips."""

from __future__ import annotations

import pytest

from repro.obs.promparse import (
    Family,
    PromParseError,
    add_labels,
    merge,
    parse,
    render,
)

VALID = """\
# HELP repro_cycle Current simulation cycle.
# TYPE repro_cycle gauge
repro_cycle 1200
# HELP repro_port_drops_total Drops by cause.
# TYPE repro_port_drops_total counter
repro_port_drops_total{cause="no_space",port="0"} 4
repro_port_drops_total{cause="no_space",port="1"} 2
# TYPE repro_latency histogram
repro_latency_bucket{le="1"} 3
repro_latency_bucket{le="8"} 10
repro_latency_bucket{le="+Inf"} 12
repro_latency_sum 55
repro_latency_count 12
"""


class TestParseAccepts:
    def test_valid_document(self):
        fams = {f.name: f for f in parse(VALID)}
        assert fams["repro_cycle"].type == "gauge"
        assert fams["repro_cycle"].help == "Current simulation cycle."
        assert fams["repro_port_drops_total"].samples[0].labels == {
            "cause": "no_space", "port": "0"}
        hist = fams["repro_latency"]
        assert hist.type == "histogram"
        assert len(hist.samples) == 5  # buckets + sum + count in one family

    def test_escapes_decoded(self):
        fams = parse('m{a="x\\\\y",b="q\\"z",c="l1\\nl2"} 1\n')
        assert fams[0].samples[0].labels == {
            "a": "x\\y", "b": 'q"z', "c": "l1\nl2"}

    def test_help_escapes_decoded_left_to_right(self):
        # \\n is an escaped backslash then a literal n, NOT a newline
        fams = parse("# HELP m back\\\\nslash\nm 1\n")
        assert fams[0].help == "back\\nslash"

    def test_inf_values(self):
        fams = parse("m +Inf\nn -Inf\n")
        assert fams[0].samples[0].value == float("inf")
        assert fams[1].samples[0].value == float("-inf")

    def test_plain_comments_and_blanks_ignored(self):
        fams = parse("\n# a comment\nm 1\n\n")
        assert [f.name for f in fams] == ["m"]


class TestParseRejects:
    @pytest.mark.parametrize("text,why", [
        ("m{a=\"x\\qy\"} 1\n", "invalid escape"),
        ("m{a=\"x} 1\n", "unterminated"),
        ("m{a='x'} 1\n", "double-quoted"),
        ("m{a=\"1\",a=\"2\"} 1\n", "duplicate label"),
        ("m 1 1690000000\n", "trailing fields"),
        ("m\n", "missing value"),
        ("m notanumber\n", "bad sample value"),
        ("# TYPE m wibble\n", "bad TYPE"),
        ("# TYPE m gauge\n# TYPE m gauge\nm 1\n", "duplicate TYPE"),
        ("# TYPE m gauge\n# HELP m late\nm 1\n", "precede"),
        ("m 1\n# TYPE m gauge\n", "after its samples"),
        ("m 1\nother 2\nm 3\n", "not contiguous"),
    ])
    def test_malformed(self, text, why):
        with pytest.raises(PromParseError, match=why):
            parse(text)

    @pytest.mark.parametrize("mutation,why", [
        (lambda t: t.replace('le="+Inf"', 'le="9"'), r"\+Inf"),
        (lambda t: t.replace('repro_latency_count 12',
                             'repro_latency_count 11'), "_count"),
        (lambda t: t.replace("repro_latency_sum 55\n", ""), "_sum"),
        (lambda t: t.replace('repro_latency_bucket{le="8"} 10',
                             'repro_latency_bucket{le="8"} 2'),
         "cumulative"),
    ])
    def test_histogram_structure(self, mutation, why):
        with pytest.raises(PromParseError, match=why):
            parse(mutation(VALID))


class TestAggregation:
    def test_round_trip(self):
        assert render(parse(VALID)) == render(parse(render(parse(VALID))))

    def test_concatenation_is_invalid_but_merge_is_not(self):
        # the reason the aggregator exists: text concatenation duplicates
        # TYPE; distinct cell labels keep merged series disjoint
        with pytest.raises(PromParseError):
            parse(VALID + VALID)
        merged = merge([add_labels(parse(VALID), cell="a"),
                        add_labels(parse(VALID), cell="b")])
        reparsed = parse(render(merged))
        cells = {s.labels["cell"] for f in reparsed for s in f.samples}
        assert cells == {"a", "b"}

    def test_add_labels_new_label_wins(self):
        fams = add_labels(parse('m{cell="old"} 1\n'), cell="new")
        assert fams[0].samples[0].labels == {"cell": "new"}

    def test_merge_type_conflict_rejected(self):
        a = [Family("m", "gauge")]
        b = [Family("m", "counter")]
        with pytest.raises(PromParseError, match="conflicting types"):
            merge([a, b])

    def test_merge_sorted_and_help_first_nonempty(self):
        a = [Family("z", "gauge"), Family("a", "gauge", help=None)]
        b = [Family("a", "gauge", help="docs")]
        merged = merge([a, b])
        assert [f.name for f in merged] == ["a", "z"]
        assert merged[0].help == "docs"

    def test_value_text_verbatim_through_render(self):
        # integers must not become 4.0, +Inf must stay +Inf
        text = "m 4\nn +Inf\n"
        assert render(parse(text)) == text
