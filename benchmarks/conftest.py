"""Shared helpers for the experiment benches.

Every bench regenerates one table/figure-level claim of the paper
(see DESIGN.md's experiment index).  Conventions:

* the full experiment runs *inside* the benchmarked callable, once
  (``rounds=1``) — pytest-benchmark then reports the experiment's wall time
  while the bench body prints the paper-style table and asserts the shape;
* all benches are deterministic (fixed seeds via ``repro.sim.rng``).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def show(table: str) -> None:
    """Print a bench's paper-style output (visible with ``-s``)."""
    print("\n" + table)
