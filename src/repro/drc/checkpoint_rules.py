"""Checkpoint-completeness rules (DRC151-153).

PR 7's checkpoint subsystem guarantees bit-identical resume — but only
for state its codecs actually serialize.  The failure mode is silent:
add a mutable attribute to a kernel, forget the codec, and snapshots
still save and restore cleanly while resumed runs diverge.  These rules
turn that into a lint-time finding by comparing two statically computed
sets per supported kernel:

* the **mutable set** — attributes of the kernel object written or
  mutated anywhere on the ``run``/``drain`` call closure, computed by
  the interprocedural dataflow engine (so ``_batchcore.advance_window``
  writing ``switch._free`` across a module boundary counts, as do
  mutations through local aliases and bound methods);
* the **serialized set** — attributes the kernel's snapshot codec (and
  the helpers it hands the switch to, plus ``snapshot_switch`` itself)
  reads off the object.

**DRC151** fires for every mutable attribute that is neither serialized
nor exempted.  Attributes assigned only in ``__init__`` are re-derived
by the restore constructor and never enter the mutable set.  Exemption
grammar (for state that is genuinely re-derived on restore, e.g.
telemetry metric handles re-resolved by ``attach_telemetry``):

* ``self._m_occ = m.gauge(...)  # drc: checkpoint-exempt`` — a marker on
  any ``<attr> = ...`` assignment line in the kernel's defining module
  exempts that attribute;
* ``# drc: checkpoint-exempt: attr_a, attr_b`` — named form, anywhere in
  the defining module;
* a marker directly on a flagged mutation site also exempts it.

**DRC152** is the inverse direction: a codec read of an attribute the
kernel class never defines (the codec outlived a field rename) fails at
snapshot time on every run — flag it statically.

**DRC153** closes the dispatch hole: ``_kernel_of`` matches kernels by
exact type (``type(switch) is C``), so a *subclass* of a supported
kernel silently falls outside the support matrix; defining one without
its own codec is flagged at the class definition.

The support matrix itself is parsed from the checkpoint package:
``_kernel_of``'s ``type(x) is C`` chain names the kernel classes, and
``snapshot_switch``'s ``kernel == "..."`` chain maps each to its codec
function, so the rules track the real dispatch — no hard-coded class
lists.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.drc.dataflow import DataflowEngine, Site, param_names
from repro.drc.graph import FunctionInfo, ProjectGraph, imports_in, module_qname
from repro.drc.rules import LintModule, Project, Rule, Violation, register

_EXEMPT_RE = re.compile(
    r"#\s*drc:\s*checkpoint-exempt(?::\s*(?P<attrs>[A-Za-z0-9_, ]+))?"
)
_ASSIGN_RE = re.compile(r"(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)\s*=[^=]")


def checkpoint_exempt(mod: LintModule) -> tuple[set[int], set[str]]:
    """(marker line numbers, attribute names exempted module-wide)."""
    lines: set[int] = set()
    attrs: set[str] = set()
    for lineno, text in enumerate(mod.source.splitlines(), start=1):
        m = _EXEMPT_RE.search(text)
        if m is None:
            continue
        lines.add(lineno)
        named = m.group("attrs")
        if named:
            attrs.update(a.strip() for a in named.split(",") if a.strip())
        else:
            code = text[: m.start()]
            am = _ASSIGN_RE.search(code)
            if am:
                attrs.add(am.group(1))
    return lines, attrs


@dataclass
class _KernelCodec:
    cls_qname: str
    kernel: str
    codec: FunctionInfo


class _CheckpointAnalysis:
    """Parses the support matrix and computes all three finding lists."""

    def __init__(self, project: Project) -> None:
        self.graph: ProjectGraph = project.graph
        self.engine = DataflowEngine(self.graph)
        self.findings: dict[str, list[Violation]] = {
            "DRC151": [], "DRC152": [], "DRC153": [],
        }
        self._exempt_cache: dict[str, tuple[set[int], set[str]]] = {}
        kernel_of = self._checkpoint_fn("_kernel_of")
        snapshot = self._checkpoint_fn("snapshot_switch")
        if kernel_of is None or snapshot is None:
            return  # lint scope does not include the checkpoint package
        kernels = self._parse_kernel_of(kernel_of)
        codecs = self._parse_snapshot(snapshot, set(kernels.values()))
        matrix = [
            _KernelCodec(cls, kernel, codecs[kernel])
            for cls, kernel in sorted(kernels.items())
            if kernel in codecs and cls in self.graph.classes
        ]
        if not matrix:
            return
        shared_reads = self._snapshot_reads(snapshot)
        for entry in matrix:
            self._check_kernel(entry, shared_reads)
        self._check_subclasses(matrix)

    # -- support-matrix parsing -------------------------------------------

    def _checkpoint_fn(self, name: str) -> FunctionInfo | None:
        for fn in sorted(self.graph.functions.values(), key=lambda f: f.qname):
            if (fn.name == name and fn.owner is None and fn.module.in_src
                    and fn.module.package == "checkpoint"):
                return fn
        return None

    def _parse_kernel_of(self, fn: FunctionInfo) -> dict[str, str]:
        """class qname -> kernel string, from ``type(x) is C`` tests."""
        params = param_names(fn)
        if not params:
            return {}
        param = params[0]
        local_env = imports_in(
            [s for s in ast.walk(fn.node) if isinstance(s, ast.stmt)],
            module_qname(fn.module.relpath), False,
        )
        out: dict[str, str] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], (ast.Is, ast.Eq))
                    and isinstance(test.left, ast.Call)
                    and isinstance(test.left.func, ast.Name)
                    and test.left.func.id == "type"
                    and test.left.args
                    and isinstance(test.left.args[0], ast.Name)
                    and test.left.args[0].id == param):
                continue
            cls_qname = self.graph.resolve_node(
                fn.module, test.comparators[0], local_env)
            if cls_qname is None:
                continue
            kernel = next(
                (s.value.value for s in node.body
                 if isinstance(s, ast.Return)
                 and isinstance(s.value, ast.Constant)
                 and isinstance(s.value.value, str)),
                None,
            )
            if kernel is not None:
                out[cls_qname] = kernel
        return out

    def _parse_snapshot(self, fn: FunctionInfo,
                        kernels: set[str]) -> dict[str, FunctionInfo]:
        """kernel string -> codec FunctionInfo, from the if/elif chain."""
        out: dict[str, FunctionInfo] = {}

        def codec_in(stmts: list[ast.stmt]) -> FunctionInfo | None:
            for stmt in stmts:
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Name)):
                        qname = self.graph.resolve_node(fn.module, node.func)
                        callee = self.graph.functions.get(qname or "")
                        if (callee is not None
                                and callee.module.package == "checkpoint"):
                            return callee
            return None

        def kernel_str(test: ast.expr) -> str | None:
            if (isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)
                    and isinstance(test.comparators[0], ast.Constant)
                    and isinstance(test.comparators[0].value, str)):
                return str(test.comparators[0].value)
            return None

        for node in fn.node.body:
            chain = node
            matched: set[str] = set()
            while isinstance(chain, ast.If):
                k = kernel_str(chain.test)
                if k is None:
                    break
                codec = codec_in(chain.body)
                if codec is not None:
                    out[k] = codec
                    matched.add(k)
                orelse = chain.orelse
                if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                    chain = orelse[0]
                    continue
                if orelse and matched:
                    codec = codec_in(orelse)
                    if codec is not None:
                        for k in sorted(kernels - matched):
                            out.setdefault(k, codec)
                break
        return out

    # -- per-kernel checks --------------------------------------------------

    def _exempt(self, mod: LintModule) -> tuple[set[int], set[str]]:
        cached = self._exempt_cache.get(mod.relpath)
        if cached is None:
            cached = checkpoint_exempt(mod)
            self._exempt_cache[mod.relpath] = cached
        return cached

    def _snapshot_reads(self, snapshot: FunctionInfo) -> set[str]:
        """Attrs snapshot_switch itself reads (intraprocedural only, so
        per-kernel codec reads do not bleed across kernels)."""
        params = param_names(snapshot)
        if not params:
            return set()
        summary = self.engine.function_summary(snapshot, follow=False)
        eff = summary.get(params[0])
        return eff.accessed_attrs() if eff is not None else set()

    def _check_kernel(self, entry: _KernelCodec,
                      shared_reads: set[str]) -> None:
        cls = self.graph.classes[entry.cls_qname]
        methods = self.graph.methods_of(entry.cls_qname)
        codec_params = param_names(entry.codec)
        serialized = set(shared_reads)
        if codec_params:
            summary = self.engine.function_summary(entry.codec)
            eff = summary.get(codec_params[0])
            if eff is not None:
                serialized |= eff.accessed_attrs()
                self._check_stale(entry, cls, eff.reads, eff.mutates)
        effects = self.engine.object_effects(entry.cls_qname, ["run", "drain"])
        # Exemptions may sit next to the assignment in any module of the
        # kernel's MRO — mixin-owned attrs (telemetry handles) are
        # assigned in the mixin's module, not the kernel's.
        module_exempt: set[str] = set()
        for info in self.graph.mro(entry.cls_qname):
            module_exempt |= self._exempt(info.module)[1]
        for attr, sites in sorted(effects.mutable_attrs().items()):
            if not attr or attr.startswith("__") or attr in methods:
                continue
            if attr in serialized or attr in module_exempt:
                continue
            if any(self._site_exempt(site) for site in sites):
                continue
            mod, node = sites[0]
            self.findings["DRC151"].append(Violation(
                "DRC151", mod.relpath, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                f"mutable attribute {attr!r} of kernel {cls.name} is "
                f"written on the run/drain path but never read by its "
                f"checkpoint codec {entry.codec.name}; resumed runs will "
                f"silently diverge — serialize it, re-derive it on "
                f"restore, or mark an assignment with "
                f"'# drc: checkpoint-exempt'",
            ))

    def _site_exempt(self, site: Site) -> bool:
        lines, _ = self._exempt(site[0])
        return getattr(site[1], "lineno", 0) in lines

    def _check_stale(self, entry: _KernelCodec, cls: "object",
                     reads: dict[str, list[Site]],
                     mutates: dict[str, list[Site]]) -> None:
        from repro.drc.graph import ClassInfo

        assert isinstance(cls, ClassInfo)
        universe = self._attr_universe(cls)
        seen: dict[str, list[Site]] = {}
        for bucket in (reads, mutates):
            for attr, sites in bucket.items():
                seen.setdefault(attr, []).extend(sites)
        for attr, sites in sorted(seen.items()):
            if not attr or attr in universe:
                continue
            sites.sort(key=lambda s: (s[0].relpath,
                                      getattr(s[1], "lineno", 0)))
            mod, node = sites[0]
            self.findings["DRC152"].append(Violation(
                "DRC152", mod.relpath, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                f"checkpoint codec {entry.codec.name} reads attribute "
                f"{attr!r}, which kernel {cls.name} never defines; the "
                f"codec has gone stale and snapshots of this kernel "
                f"raise AttributeError",
            ))

    def _attr_universe(self, cls: "object") -> set[str]:
        """Every attribute name the class can carry: self-assignments in
        any method along the MRO, class-level names, and methods."""
        from repro.drc.graph import ClassInfo

        assert isinstance(cls, ClassInfo)
        out: set[str] = set()
        for info in self.graph.mro(cls.qname):
            for stmt in info.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.add(stmt.name)
                    args = param_names(self.graph.functions[
                        f"{info.qname}.{stmt.name}"])
                    selfname = args[0] if args else "self"
                    for node in ast.walk(stmt):
                        if (isinstance(node, ast.Attribute)
                                and isinstance(node.ctx, (ast.Store,
                                                          ast.Del))
                                and isinstance(node.value, ast.Name)
                                and node.value.id == selfname):
                            out.add(node.attr)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            out.add(target.id)
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        out.add(stmt.target.id)
        return out

    def _check_subclasses(self, matrix: list[_KernelCodec]) -> None:
        supported = {entry.cls_qname for entry in matrix}
        for entry in matrix:
            cls = self.graph.classes[entry.cls_qname]
            for sub_qname in sorted(
                    self.graph.subclasses_of(entry.cls_qname, strict=True)):
                if sub_qname in supported:
                    continue
                sub = self.graph.classes[sub_qname]
                if not sub.module.in_src:
                    continue
                self.findings["DRC153"].append(Violation(
                    "DRC153", sub.module.relpath, sub.node.lineno,
                    sub.node.col_offset + 1,
                    f"{sub.name} subclasses checkpoint-supported kernel "
                    f"{cls.name}, but checkpoint dispatch is exact-type "
                    f"(type(x) is {cls.name}) so instances are refused at "
                    f"snapshot time; add a codec for it or do not derive "
                    f"from a checkpointable kernel",
                ))


def _analysis(project: Project) -> _CheckpointAnalysis:
    cached = getattr(project, "_ckpt_analysis", None)
    if isinstance(cached, _CheckpointAnalysis):
        return cached
    analysis = _CheckpointAnalysis(project)
    project._ckpt_analysis = analysis  # type: ignore[attr-defined]
    return analysis


@register
class CheckpointCompletenessRule(Rule):
    code = "DRC151"
    name = "checkpoint-unserialized-state"
    summary = ("every mutable kernel attribute on the run/drain path must "
               "be serialized by its checkpoint codec, re-derived on "
               "restore, or exempted with '# drc: checkpoint-exempt'")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC151"]


@register
class StaleCodecFieldRule(Rule):
    code = "DRC152"
    name = "checkpoint-stale-codec-field"
    summary = ("checkpoint codecs must only read attributes their kernel "
               "class defines; stale fields fail at snapshot time")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC152"]


@register
class UncheckpointableSubclassRule(Rule):
    code = "DRC153"
    name = "checkpoint-subclass-unsupported"
    summary = ("checkpoint dispatch is exact-type; subclasses of supported "
               "kernels need their own codec")
    scope = "project"
    version = 1

    def check_project(self, project: Project) -> Iterator[Violation]:
        yield from _analysis(project).findings["DRC153"]


__all__ = [
    "CheckpointCompletenessRule",
    "StaleCodecFieldRule",
    "UncheckpointableSubclassRule",
    "checkpoint_exempt",
]
