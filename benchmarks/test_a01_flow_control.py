"""Ablation A1 — flow control: drop-tail vs end-to-end credits vs downstream
credits (Telegraphos §4.2's credit-based flow control).

Not a paper table, but a design choice DESIGN.md calls out: the Telegraphos
switches are lossless (credit flow control) where most ATM-era shared-buffer
switches dropped cells.  This bench quantifies what each mechanism does to
loss and buffer occupancy at saturation with a small buffer.
"""

from conftest import show

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    SaturatingSource,
)
from repro.switches.harness import format_table


def _run(name, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=4, addresses=16, **cfg_kwargs)
    src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=9)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 2000
    sw.run(60_000)
    return [
        name,
        round(sw.link_utilization, 3),
        round(sw.stats.loss_probability, 4),
        sw.buffer.peak_occupancy,
        round(sw.ct_latency.mean, 1),
    ]


def _experiment():
    return [
        _run("drop-tail"),
        _run("end-to-end credits", credit_flow=True),
        # 1 credit with RTT = B halves the per-output window (B/(B+rtt));
        # 2 credits would exactly cover the round trip and not bind.
        _run("downstream credits (1, rtt 8)", downstream_credits=1, downstream_rtt=8),
        _run("both credit mechanisms", credit_flow=True,
             downstream_credits=1, downstream_rtt=8),
    ]


def test_a01_flow_control(run_once):
    rows = run_once(_experiment)
    show(format_table(
        ["flow control", "utilization", "loss", "peak buffer", "mean CT latency"],
        rows,
        title="A1 ablation: flow control at saturation (4x4, 16-packet buffer)",
    ))
    by_name = {r[0]: r for r in rows}
    # drop-tail loses cells, end-to-end credit modes never do
    assert by_name["drop-tail"][2] > 0
    assert by_name["end-to-end credits"][2] == 0
    assert by_name["both credit mechanisms"][2] == 0
    # an under-provisioned downstream credit window caps throughput at
    # roughly B/(B+rtt) = 0.5 per output
    assert by_name["downstream credits (1, rtt 8)"][1] < 0.6
    # buffer never exceeds its capacity anywhere
    assert all(r[3] <= 16 for r in rows)
