"""Area model of the memory banks (paper figure 7).

A pipelined memory of ``B`` banks, each ``w`` bits wide and ``A`` words deep,
occupies:

* ``B * A * w`` bit cells;
* **one** address decoder (first bank) plus ``B - 1`` decoded-address
  pipeline registers (figure 7b) — each pipeline register is 2.3 x smaller
  than a decoder (paper §4.4).  The traditional alternative (figure 7a) uses
  ``B`` full decoders; both variants are modeled so the optimization can be
  priced (bench E9 ablation).

A *wide* memory of the same capacity has the same bit cells and one decoder,
but its word lines span ``B * w`` bit cells (the RC-delay cost priced by
:mod:`repro.vlsi.timing`); in practice it must be split into blocks with
replicated decoders, converging to the figure-7a floorplan — which is the
paper's §4.3 argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.technology import Technology


@dataclass(frozen=True, slots=True)
class MemoryArea:
    """Area breakdown (mm^2) of a memory organization."""

    bits_mm2: float
    decoders_mm2: float
    pipeline_regs_mm2: float
    total_mm2: float
    width_mm: float  # storage-array width (bit columns)
    height_mm: float  # storage-array height (word rows)


def _mm2(um2: float) -> float:
    return um2 / 1e6


def bank_dimensions_um(tech: Technology, addresses: int, width_bits: int) -> tuple[float, float]:
    """(width, height) in um of one bank's storage array."""
    return (width_bits * tech.bit_width_um(), addresses * tech.bit_height_um())


def decoder_area_um2(tech: Technology, addresses: int) -> float:
    """One address decoder column: ``decoder_width_bits`` bit-widths wide,
    spanning all word rows."""
    width = tech.decoder_width_bits * tech.bit_width_um()
    return width * addresses * tech.bit_height_um()


def pipereg_area_um2(tech: Technology, addresses: int) -> float:
    """One decoded-address pipeline register column (figure 7b):
    ``decoder / 2.3`` (paper §4.4)."""
    return decoder_area_um2(tech, addresses) / tech.decoder_to_pipereg_ratio


def pipelined_memory_area(
    tech: Technology,
    n_banks: int,
    addresses: int,
    width_bits: int,
    address_pipeline: bool = True,
) -> MemoryArea:
    """Total memory-block area of a pipelined memory.

    ``address_pipeline=False`` prices the figure-7a variant (a full decoder
    per bank) for the ablation bench.
    """
    if n_banks < 1 or addresses < 1 or width_bits < 1:
        raise ValueError("banks, addresses and width must all be >= 1")
    bw, bh = bank_dimensions_um(tech, addresses, width_bits)
    bits = n_banks * bw * bh
    if address_pipeline:
        decoders = decoder_area_um2(tech, addresses)
        piperegs = (n_banks - 1) * pipereg_area_um2(tech, addresses)
    else:
        decoders = n_banks * decoder_area_um2(tech, addresses)
        piperegs = 0.0
    total = bits + decoders + piperegs
    width_mm = (n_banks * bw + _decoder_strip_width(tech, n_banks, address_pipeline)) / 1e3
    return MemoryArea(
        bits_mm2=_mm2(bits),
        decoders_mm2=_mm2(decoders),
        pipeline_regs_mm2=_mm2(piperegs),
        total_mm2=_mm2(total),
        width_mm=width_mm,
        height_mm=bh / 1e3,
    )


def _decoder_strip_width(tech: Technology, n_banks: int, address_pipeline: bool) -> float:
    dec = tech.decoder_width_bits * tech.bit_width_um()
    if address_pipeline:
        return dec + (n_banks - 1) * dec / tech.decoder_to_pipereg_ratio
    return n_banks * dec


def wide_memory_area(
    tech: Technology, addresses: int, total_width_bits: int
) -> MemoryArea:
    """A single wide memory of ``total_width_bits`` columns, one decoder.

    Same bit count as the pipelined memory of equal capacity; the missing
    pipeline registers are its (small) area advantage, its word-line RC its
    (large) speed disadvantage — see :func:`repro.vlsi.timing.wordline_delay`.
    """
    bw, bh = bank_dimensions_um(tech, addresses, total_width_bits)
    bits = bw * bh
    decoders = decoder_area_um2(tech, addresses)
    return MemoryArea(
        bits_mm2=_mm2(bits),
        decoders_mm2=_mm2(decoders),
        pipeline_regs_mm2=0.0,
        total_mm2=_mm2(bits + decoders),
        width_mm=(bw + tech.decoder_width_bits * tech.bit_width_um()) / 1e3,
        height_mm=bh / 1e3,
    )


def megacell_area_mm2(tech: Technology, addresses: int, width_bits: int) -> float:
    """Area of one compiled SRAM megacell (decoders amortized in the unit
    bit area) — the Telegraphos II building block."""
    return _mm2(addresses * width_bits * tech.megacell_bit_area_um2 * tech.f2)


def shift_register_buffer_area_mm2(
    tech: Technology, n_banks: int, addresses: int, width_bits: int
) -> float:
    """§5.3: the same capacity built of dynamic shift registers — 4x the
    3T-dynamic-RAM bit area, and it would preclude cut-through."""
    bits = n_banks * addresses * width_bits
    return _mm2(bits * tech.bit_area() * tech.shift_register_bit_factor)
