"""repro — reproduction of "Pipelined Memory Shared Buffer for VLSI Switches"
(Katevenis, Vatsolaki, Efthymiou; ACM SIGCOMM 1995).

Subpackages
-----------
``repro.core``
    Word/cycle-accurate pipelined-memory switch (the paper's contribution),
    the wide-memory baseline, and the half-quantum split buffer.
``repro.switches``
    Slot-level models of every buffer architecture in the paper's section 2.
``repro.network``
    Flit-level wormhole k-ary n-cube (the [Dally90] comparison substrate).
``repro.analysis``
    Queueing/loss/latency analytics the paper cites, used as test oracles.
``repro.vlsi``
    Silicon area/timing models calibrated to the Telegraphos prototypes.
``repro.traffic``
    Synthetic traffic generators shared by all simulators.
``repro.sim``
    Cycle kernel, packet objects, statistics, deterministic RNG.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``benchmarks/`` regenerates every quantitative
claim of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
