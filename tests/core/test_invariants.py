"""Property-based invariant tests for the pipelined-memory switch.

The paper's correctness argument (§3.2-§3.3) is that the one-wave-per-cycle
budget always suffices: no bank conflict, no bus contention, no input-latch
overrun, no output-register double load, and under lossless flow control no
missed store deadline — across *any* traffic pattern.  Hypothesis hunts for
counterexamples; the structural checks inside the components turn any
violation into an exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    Priority,
    RenewalPacketSource,
    SaturatingSource,
    TracePacketSource,
)


@st.composite
def random_schedules(draw):
    """A random packet-injection schedule for a small switch."""
    n = draw(st.integers(2, 4))
    schedule = {}
    for link in range(n):
        count = draw(st.integers(0, 8))
        cycles = sorted(draw(st.lists(st.integers(0, 120), min_size=count, max_size=count)))
        dests = draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
        schedule[link] = list(zip(cycles, dests))
    return n, schedule


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_arbitrary_schedules_deliver_everything_unharmed(case):
    """Any injection schedule: all packets delivered exactly once, with
    exact payloads, in FIFO order per output, no structural violations."""
    n, schedule = case
    cfg = PipelinedSwitchConfig(n=n, addresses=64)
    src = TracePacketSource(n_out=n, packet_words=cfg.packet_words, schedule=schedule)
    sw = PipelinedSwitch(cfg, src)
    sw.run(400)
    sw.drain()
    offered = sum(len(v) for v in schedule.values())
    assert sw.stats.delivered == offered == sw.stats.offered
    assert sw.stats.dropped == 0
    for sink in sw.sinks:
        heads = [h for _, h, _ in sink.delivered]
        assert heads == sorted(heads)


@given(
    n=st.integers(2, 5),
    load=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**31),
    priority=st.sampled_from(list(Priority)),
)
@settings(max_examples=25, deadline=None)
def test_random_load_never_violates_structure(n, load, seed, priority):
    """Structural invariants hold at any load under any policy; with ample
    buffering nothing is dropped."""
    cfg = PipelinedSwitchConfig(n=n, addresses=256, priority=priority)
    src = RenewalPacketSource(
        n_out=n, packet_words=cfg.packet_words, load=load, seed=seed
    )
    sw = PipelinedSwitch(cfg, src)
    sw.run(2_000)  # any internal violation raises
    assert sw.stats.offered >= sw.stats.accepted
    assert sw.buffer.occupancy <= cfg.addresses


@given(n=st.integers(2, 5), seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_credit_flow_is_lossless_even_at_saturation(n, seed):
    """The §3.2 exact-fit argument under back-to-back packets: with credit
    flow control no deadline is ever missed and nothing is dropped."""
    cfg = PipelinedSwitchConfig(n=n, addresses=32, credit_flow=True)
    src = SaturatingSource(n_out=n, packet_words=cfg.packet_words, seed=seed)
    sw = PipelinedSwitch(cfg, src)
    sw.run(3_000)  # DeadlineMissedError would raise here
    assert sw.stats.dropped == 0


@given(seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_drop_tail_conserves_packets(seed):
    """offered == delivered + dropped + in-flight, exactly, at all times."""
    cfg = PipelinedSwitchConfig(n=3, addresses=4)  # tiny buffer: forces drops
    src = SaturatingSource(n_out=3, packet_words=cfg.packet_words, seed=seed)
    sw = PipelinedSwitch(cfg, src)
    sw.run(2_000)
    sw.drain()
    assert sw.stats.offered == sw.stats.delivered + sw.stats.dropped
    assert sw.is_empty()


@given(
    n=st.integers(2, 4),
    dests_seed=st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_all_inputs_one_output_is_lossless_with_credits(n, dests_seed):
    """Worst-case contention (everyone to output 0) with credits: the
    switch must stay lossless, output 0 at line rate."""
    cfg = PipelinedSwitchConfig(n=n, addresses=4 * n, credit_flow=True)
    src = SaturatingSource(
        n_out=n, packet_words=cfg.packet_words, dests=[0] * n, seed=dests_seed
    )
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 500
    sw.run(4_000)
    assert sw.stats.dropped == 0
    measured = sw.stats.measured_slots
    rate = sw.stats.per_output_delivered[0] * cfg.packet_words / measured
    assert rate > 0.9


def test_back_to_back_same_cycle_heads_all_survive():
    """The tight case behind §3.2's exact fit: every input starts a packet
    in the same cycle, repeatedly, destinations rotating."""
    n = 4
    cfg = PipelinedSwitchConfig(n=n, addresses=64)
    b = cfg.packet_words
    schedule = {
        i: [(k * b, (i + k) % n) for k in range(10)] for i in range(n)
    }
    src = TracePacketSource(n_out=n, packet_words=b, schedule=schedule)
    sw = PipelinedSwitch(cfg, src)
    sw.run(20 * b)
    sw.drain()
    assert sw.stats.delivered == 40
    assert sw.stats.dropped == 0
