"""Flit-level wormhole routing with virtual-channel lanes [Dally90].

Wormhole flow control: a message's header flit allocates one *lane* (virtual
channel buffer) on each hop's input port; body flits follow the header
through the held lanes; the tail releases them.  When a header blocks, the
whole worm stalls in place, holding its lanes — with a single lane per port a
blocked worm blocks every other message needing those channels, which is why
input-queue-style buffering saturates so early with multi-flit messages
(paper §2.1).  Multiple lanes per port let other worms interleave past a
blocked one, recovering throughput: the [Dally90 fig 8] comparison
reproduced by bench E2.

Physical channel multiplexing: each (node, port) pair transmits at most one
flit per cycle, shared round-robin among its lanes — Dally's model.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import KAryNCube, Port
from repro.sim.rng import make_rng
from repro.sim.stats import Counter

_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """A multi-flit wormhole message."""

    src: int
    dst: int
    length: int
    created: int  # cycle the message was queued at the source
    injected: int = -1  # cycle the header entered the network
    delivered: int = -1  # cycle the tail reached the destination
    # Dateline virtual-channel state ([Dally90]'s deadlock-avoidance scheme
    # for torus rings): class 0 until the worm crosses a ring's wraparound
    # edge, class 1 after; reset on entering a new dimension.
    vc_class: int = 0
    current_dim: int = -1
    uid: int = field(default_factory=lambda: next(_message_ids))


@dataclass(slots=True)
class Flit:
    msg: Message
    index: int
    last_moved: int = -1  # guards against multi-hop-per-cycle artifacts

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.msg.length - 1


class Lane:
    """One virtual-channel buffer on an input port (or the injection port)."""

    __slots__ = ("capacity", "flits", "out_port", "downstream", "reserved", "name")

    def __init__(self, capacity: int, name: str) -> None:
        if capacity < 1:
            raise ValueError(f"lane needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self.flits: deque[Flit] = deque()
        self.out_port: Port | None = None  # route held by the current worm
        self.downstream: "Lane | None" = None  # allocated next-hop lane
        self.reserved = False  # an upstream worm holds this lane
        self.name = name

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.flits)

    @property
    def busy(self) -> bool:
        """A worm currently owns this lane (allocated and not yet drained).

        ``reserved`` is what makes lane allocation exclusive: it is set the
        moment an upstream header claims the lane — before any flit arrives —
        and cleared when that worm's tail leaves this lane.  Without it two
        worms could interleave into one lane, corrupting both (and, in
        practice, deadlocking the network).
        """
        return (
            self.reserved
            or self.out_port is not None
            or self.downstream is not None
            or bool(self.flits)
        )


class WormholeNetwork:
    """A k-ary n-cube of wormhole routers with ``lanes`` virtual channels.

    Parameters
    ----------
    buffer_flits:
        Total buffering per input port, split evenly among the lanes
        (Dally's fig 8 setting: 16 flits; so 1 lane of 16, 2 of 8, ...).
    message_flits:
        Message length (fig 8: 20 flits — *larger* than the buffers).
    load:
        Offered load as a fraction of network capacity (uniform traffic).
    """

    def __init__(
        self,
        topology: KAryNCube,
        lanes: int = 1,
        buffer_flits: int = 16,
        message_flits: int = 20,
        load: float = 0.5,
        seed: int | np.random.Generator | None = None,
        max_source_queue: int = 64,
        dateline: bool = False,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"need >= 1 lane, got {lanes}")
        if buffer_flits < lanes:
            raise ValueError(
                f"buffer_flits ({buffer_flits}) must cover {lanes} lanes"
            )
        if message_flits < 1:
            raise ValueError(f"messages need >= 1 flit, got {message_flits}")
        if not 0.0 <= load <= 2.0:
            raise ValueError(f"load must be in [0, 2], got {load}")
        if dateline and lanes < 2:
            raise ValueError(
                "the dateline scheme needs >= 2 lanes per port "
                "(class-0 and class-1 virtual channels)"
            )
        self.dateline = dateline
        self.topo = topology
        self.lanes_per_port = lanes
        self.lane_capacity = buffer_flits // lanes
        self.message_flits = message_flits
        self.load = load
        self.rng = make_rng(seed)
        self.injection_rate = load * topology.capacity_message_rate(message_flits)
        self.max_source_queue = max_source_queue

        # lanes[node][port] -> list of Lane; port index into topo.ports.
        self.lanes: list[list[list[Lane]]] = [
            [
                [
                    Lane(self.lane_capacity, f"n{v}.p{p}.l{l}")
                    for l in range(lanes)
                ]
                for p in range(len(topology.ports))
            ]
            for v in range(topology.num_nodes)
        ]
        # Injection: one queue of waiting messages + an injection lane per node.
        self.source_queues: list[deque[Message]] = [
            deque() for _ in range(topology.num_nodes)
        ]
        self.injection_lanes = [
            Lane(message_flits, f"n{v}.inject") for v in range(topology.num_nodes)
        ]
        self._port_index = {port: idx for idx, port in enumerate(topology.ports)}
        self._rr = {}  # (node, port_idx or 'eject') -> round-robin pointer
        self.cycle = 0
        self.warmup = 0
        # statistics
        self.offered_messages = 0
        self.refused_messages = 0  # source queue overflow (measures overload)
        self.delivered_messages = 0
        self.delivered_flits_measured = 0
        self.latency = Counter()  # created -> tail delivered
        self.network_latency = Counter()  # injected -> tail delivered

    # -- injection -------------------------------------------------------------
    def _generate_traffic(self, t: int) -> None:
        n = self.topo.num_nodes
        mask = self.rng.random(n) < self.injection_rate
        dests = self.rng.integers(0, n, size=n)
        for v in np.nonzero(mask)[0]:
            v = int(v)
            dst = int(dests[v])
            if dst == v:
                continue  # self-traffic never enters the network
            if t >= self.warmup:
                self.offered_messages += 1
            if len(self.source_queues[v]) >= self.max_source_queue:
                if t >= self.warmup:
                    self.refused_messages += 1
                continue
            self.source_queues[v].append(
                Message(src=v, dst=dst, length=self.message_flits, created=t)
            )

    def _feed_injection_lanes(self, t: int) -> None:
        for v, lane in enumerate(self.injection_lanes):
            if lane.busy or not self.source_queues[v]:
                continue
            msg = self.source_queues[v].popleft()
            msg.injected = t
            lane.flits.extend(Flit(msg, k) for k in range(msg.length))
            lane.out_port = None  # routed when the header reaches the front

    # -- per-hop machinery ----------------------------------------------------------
    def _candidate_lanes(self, node: int) -> list[Lane]:
        lanes = [self.injection_lanes[node]]
        for port_lanes in self.lanes[node]:
            lanes.extend(port_lanes)
        return lanes

    def _allocate_downstream(
        self, node: int, lane: Lane, port: Port, msg: Message
    ) -> bool:
        """Try to grab a free lane on the next hop's matching input port.

        With the dateline scheme enabled, the lane must belong to the worm's
        current virtual-channel class: lanes [0, L/2) are class 0, lanes
        [L/2, L) are class 1; a worm switches to class 1 on the hop that
        crosses a ring's wraparound edge, which breaks the torus cycle
        ([Dally90]).
        """
        nxt = self.topo.neighbor(node, port)
        # The flit arrives on the port it *came from*, seen from the receiver:
        # the input port at `nxt` for direction `port` is the opposite sign.
        in_port = Port(port.dim, -port.sign)
        in_idx = self._port_index[in_port]
        candidates = self.lanes[nxt][in_idx]
        if self.dateline:
            if port.dim != msg.current_dim:
                msg.current_dim = port.dim
                msg.vc_class = 0
            coord = self.topo.coords(node)[port.dim]
            crossing = (port.sign == +1 and coord == self.topo.k - 1) or (
                port.sign == -1 and coord == 0
            )
            vc_class = 1 if (crossing or msg.vc_class == 1) else 0
            half = self.lanes_per_port // 2
            candidates = candidates[half:] if vc_class else candidates[:half]
            chosen_class = vc_class
        else:
            chosen_class = msg.vc_class  # unused, kept for symmetry
        for cand in candidates:
            if not cand.busy:
                cand.reserved = True
                lane.downstream = cand
                if self.dateline:
                    msg.vc_class = chosen_class
                return True
        return False

    def _advance_node(self, t: int, node: int) -> None:
        """Move at most one flit per output channel (incl. ejection)."""
        # Gather head flits per desired output.
        wants: dict[object, list[Lane]] = {}
        for lane in self._candidate_lanes(node):
            if not lane.flits:
                continue
            head = lane.flits[0]
            if head.last_moved == t:
                continue  # already advanced one hop this cycle
            if head.is_head and lane.out_port is None and lane.downstream is None:
                # Route the worm now (header at front of lane).
                port = self.topo.route_dimension_order(node, head.msg.dst)
                if port is None:
                    wants.setdefault("eject", []).append(lane)
                    continue
                if self._allocate_downstream(node, lane, port, head.msg):
                    lane.out_port = port
                else:
                    continue  # blocked: no free lane downstream
            if lane.out_port is None and lane.downstream is None:
                # Body flits whose worm has already ejected its header: the
                # remaining flits continue to the sink.
                wants.setdefault("eject", []).append(lane)
                continue
            wants.setdefault(self._port_index[lane.out_port], []).append(lane)

        for key, lanes in wants.items():
            ptr = self._rr.get((node, key), 0)
            order = lanes[ptr % len(lanes):] + lanes[: ptr % len(lanes)]
            moved = False
            for lane in order:
                if key == "eject":
                    self._eject(t, node, lane)
                    moved = True
                else:
                    down = lane.downstream
                    assert down is not None
                    if down.free_space < 1:
                        continue  # no credit
                    flit = lane.flits.popleft()
                    flit.last_moved = t
                    down.flits.append(flit)
                    if flit.is_tail:
                        lane.out_port = None
                        lane.downstream = None
                        lane.reserved = False
                    moved = True
                if moved:
                    self._rr[(node, key)] = (ptr + 1) % max(len(lanes), 1)
                    break

    def _eject(self, t: int, node: int, lane: Lane) -> None:
        flit = lane.flits.popleft()
        msg = flit.msg
        if flit.is_head:
            lane.out_port = None
            lane.downstream = None
        if flit.is_tail:
            lane.out_port = None
            lane.downstream = None
            lane.reserved = False
            msg.delivered = t
            if msg.created >= self.warmup:
                self.delivered_messages += 1
                self.delivered_flits_measured += msg.length
                self.latency.add(t - msg.created)
                if msg.injected >= 0:
                    self.network_latency.add(t - msg.injected)

    # -- main loop ----------------------------------------------------------------------
    def tick(self) -> None:
        t = self.cycle
        self._generate_traffic(t)
        self._feed_injection_lanes(t)
        # Randomized node order each cycle avoids systematic bias.
        for node in self.rng.permutation(self.topo.num_nodes):
            self._advance_node(t, int(node))
        self.cycle = t + 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    # -- derived metrics ---------------------------------------------------------------
    def delivered_fraction_of_capacity(self) -> float:
        """Delivered traffic as a fraction of network capacity."""
        measured = self.cycle - self.warmup
        if measured <= 0:
            return float("nan")
        rate = self.delivered_messages / (measured * self.topo.num_nodes)
        return rate / self.topo.capacity_message_rate(self.message_flits)

    def summary(self) -> dict[str, float]:
        return {
            "lanes": self.lanes_per_port,
            "offered_fraction": self.load,
            "delivered_fraction": self.delivered_fraction_of_capacity(),
            "mean_latency": self.latency.mean,
            "mean_network_latency": self.network_latency.mean,
            "delivered_messages": self.delivered_messages,
            "refused_messages": self.refused_messages,
        }
