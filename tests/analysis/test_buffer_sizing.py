"""Tests for the [HlKa88] buffer-sizing models (bench E3's engine)."""

import pytest

from repro.analysis.buffer_sizing import (
    hlka88_comparison,
    input_smoothing_capacity_for_loss,
    input_smoothing_loss,
    output_queue_capacity_for_loss,
    output_queue_loss,
    shared_buffer_capacity_for_loss,
    shared_buffer_overflow,
)


class TestOutputQueueLoss:
    def test_loss_decreases_with_capacity(self):
        losses = [output_queue_loss(16, 0.8, c) for c in (2, 6, 12)]
        assert losses[0] > losses[1] > losses[2]

    def test_loss_increases_with_load(self):
        assert output_queue_loss(16, 0.9, 8) > output_queue_loss(16, 0.6, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            output_queue_loss(16, 0.8, 0)

    def test_hlka88_output_number(self):
        """[HlKa88] quote: ~11.1 cells per output at n=16, p=0.8, 1e-3."""
        cap = output_queue_capacity_for_loss(16, 0.8, 1e-3)
        assert 10 <= cap <= 13

    def test_simulation_agreement(self):
        from repro.switches import OutputQueued
        from repro.traffic import BernoulliUniform

        n, p, cap = 8, 0.9, 4
        sw = OutputQueued(n, n, capacity=cap, warmup=2000, seed=1)
        stats = sw.run(BernoulliUniform(n, n, p, seed=2), 80_000)
        assert stats.loss_probability == pytest.approx(
            output_queue_loss(n, p, cap), rel=0.15
        )


class TestSharedBufferSizing:
    def test_overflow_decreases_with_capacity(self):
        a = shared_buffer_overflow(16, 0.8, 20)
        b = shared_buffer_overflow(16, 0.8, 60)
        assert a > b

    def test_shared_needs_far_less_than_output_total(self):
        """The paper's §2.2 core claim, in our exact conventions."""
        shared = shared_buffer_capacity_for_loss(16, 0.8, 1e-3)
        output_total = 16 * output_queue_capacity_for_loss(16, 0.8, 1e-3)
        assert shared < output_total / 2

    def test_sizing_conservative_vs_simulation(self):
        """The independence approximation overestimates loss, so the sized
        capacity is sufficient in the true (simulated) system."""
        from repro.switches import SharedBuffer
        from repro.traffic import BernoulliUniform

        n, p, target = 16, 0.8, 1e-3
        cap = shared_buffer_capacity_for_loss(n, p, target)
        sw = SharedBuffer(n, n, capacity=cap, warmup=2000, seed=3)
        stats = sw.run(BernoulliUniform(n, n, p, seed=4), 120_000)
        assert stats.loss_probability <= target * 2  # sampling allowance


class TestInputSmoothing:
    def test_loss_decreases_with_frame(self):
        assert input_smoothing_loss(16, 0.8, 20) > input_smoothing_loss(16, 0.8, 60)

    def test_validation(self):
        with pytest.raises(ValueError):
            input_smoothing_loss(16, 0.8, 0)

    def test_hlka88_smoothing_number(self):
        """[HlKa88] quote: ~80 cells per input at n=16, p=0.8, 1e-3."""
        b = input_smoothing_capacity_for_loss(16, 0.8, 1e-3)
        assert 70 <= b <= 95

    def test_zero_load_zero_loss(self):
        assert input_smoothing_loss(16, 0.0, 10) == 0.0


class TestComparisonTable:
    def test_ordering_reproduces_paper(self):
        """shared << output << input smoothing — the §2.2 ranking, with at
        least the paper's separation factors (2x and 15x)."""
        r = hlka88_comparison(16, 0.8, 1e-3)
        assert r["shared_total"] * 2 <= r["output_total"]
        assert r["output_total"] * 4 <= r["smoothing_total"]
        assert r["shared_per_output"] < 8
        assert r["smoothing_per_input"] >= 70
