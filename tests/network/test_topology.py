"""Tests for k-ary n-cube topologies and dimension-order routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import KAryNCube, Port


def test_validation():
    with pytest.raises(ValueError):
        KAryNCube(1, 2)
    with pytest.raises(ValueError):
        Port(0, 2)


def test_coords_roundtrip():
    topo = KAryNCube(4, 3)
    for node in range(topo.num_nodes):
        assert topo.node_at(topo.coords(node)) == node


def test_mesh_edge_has_no_link():
    topo = KAryNCube(4, 1)  # a 4-node line
    with pytest.raises(ValueError):
        topo.neighbor(0, Port(0, -1))
    assert topo.neighbor(0, Port(0, +1)) == 1


def test_torus_wraps():
    topo = KAryNCube(4, 1, wrap=True)
    assert topo.neighbor(0, Port(0, -1)) == 3
    assert topo.neighbor(3, Port(0, +1)) == 0


@given(k=st.integers(2, 6), n=st.integers(1, 3), wrap=st.booleans(),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_dimension_order_routing_terminates_at_destination(k, n, wrap, seed):
    import random

    rng = random.Random(seed)
    topo = KAryNCube(k, n, wrap=wrap)
    src = rng.randrange(topo.num_nodes)
    dst = rng.randrange(topo.num_nodes)
    node, hops = src, 0
    while node != dst:
        port = topo.route_dimension_order(node, dst)
        assert port is not None
        node = topo.neighbor(node, port)
        hops += 1
        assert hops <= topo.num_nodes * n  # no cycles
    assert hops == topo.hop_count(src, dst)


def test_route_at_destination_is_none():
    topo = KAryNCube(4, 2)
    assert topo.route_dimension_order(5, 5) is None


def test_torus_takes_short_way_round():
    topo = KAryNCube(8, 1, wrap=True)
    port = topo.route_dimension_order(0, 6)  # 2 hops backward vs 6 forward
    assert port == Port(0, -1)


def test_average_hops_values():
    # torus: k/4 per dimension for even k
    assert KAryNCube(8, 2, wrap=True).average_hops() == pytest.approx(4.0)
    # mesh: (k^2-1)/(3k) per dimension
    assert KAryNCube(8, 1).average_hops() == pytest.approx(63 / 24)


def test_channels_per_node():
    assert KAryNCube(8, 2, wrap=True).channels_per_node() == 4.0
    assert KAryNCube(8, 2).channels_per_node() == pytest.approx(3.5)


def test_capacity_rate_positive():
    topo = KAryNCube(8, 2)
    assert 0 < topo.capacity_message_rate(20) < 1
