"""Property-based tests of the silicon models: scaling laws that must hold
for *any* configuration, not just the calibrated Telegraphos points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vlsi import (
    Style,
    TELEGRAPHOS_III_TECH,
    Technology,
    crossbar_cost,
    pipelined_memory_area,
    pipelined_peripheral_area,
    scaled,
    wide_peripheral_area,
    wordline_delay,
)

techs = st.builds(
    lambda f, s: Technology(name="t", feature_um=f, style=s),
    f=st.floats(0.2, 2.0),
    s=st.sampled_from(list(Style)),
)


@given(tech=techs, n_banks=st.integers(1, 64), addresses=st.integers(1, 1024),
       width=st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_memory_area_positive_and_monotone_in_bits(tech, n_banks, addresses, width):
    area = pipelined_memory_area(tech, n_banks, addresses, width)
    assert area.total_mm2 > 0
    bigger = pipelined_memory_area(tech, n_banks, addresses + 1, width)
    assert bigger.total_mm2 > area.total_mm2


@given(tech=techs, n=st.integers(1, 32), width=st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_peripheral_square_law(tech, n, width):
    """Doubling the links quadruples the peripheral area — always."""
    a = pipelined_peripheral_area(tech, n, width).area_mm2
    b = pipelined_peripheral_area(tech, 2 * n, width).area_mm2
    assert b == pytest.approx(4 * a, rel=1e-9)


@given(tech=techs, n=st.integers(1, 32), width=st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_wide_always_costs_more_peripheral(tech, n, width):
    pipe = pipelined_peripheral_area(tech, n, width).area_mm2
    wide = wide_peripheral_area(tech, n, width).area_mm2
    assert wide > pipe


@given(f=st.floats(0.2, 2.0))
@settings(max_examples=30, deadline=None)
def test_area_scales_with_f_squared(f):
    base = TELEGRAPHOS_III_TECH
    other = scaled(base, f)
    ratio = (f / base.feature_um) ** 2
    a0 = pipelined_memory_area(base, 8, 128, 16).total_mm2
    a1 = pipelined_memory_area(other, 8, 128, 16).total_mm2
    assert a1 == pytest.approx(a0 * ratio, rel=1e-9)


@given(tech=techs, rows=st.integers(1, 64), cols=st.integers(1, 512),
       width=st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_crossbar_cost_bilinear(tech, rows, cols, width):
    c = crossbar_cost(tech, rows, cols, width)
    d = crossbar_cost(tech, rows, 2 * cols, width)
    assert d.crosspoints == 2 * c.crosspoints
    assert d.area_mm2 == pytest.approx(2 * c.area_mm2, rel=1e-9)


@given(tech=techs, span=st.integers(1, 2048))
@settings(max_examples=50, deadline=None)
def test_wordline_delay_monotone_superlinear(tech, span):
    d1 = wordline_delay(tech, span)
    d2 = wordline_delay(tech, 2 * span)
    assert d2.total_ns > d1.total_ns
    assert d2.wire_delay_ns == pytest.approx(4 * d1.wire_delay_ns, rel=1e-9)


@given(tech=techs)
@settings(max_examples=30, deadline=None)
def test_clock_worst_slower_than_typical(tech):
    assert tech.clock_ns(worst_case=True) > tech.clock_ns(worst_case=False)
