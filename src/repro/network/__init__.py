"""Wormhole-network substrate for the [Dally90] comparison (bench E2)."""

from repro.network.topology import KAryNCube, Port
from repro.network.wormhole import Flit, Lane, Message, WormholeNetwork

__all__ = ["KAryNCube", "Port", "WormholeNetwork", "Message", "Flit", "Lane"]
