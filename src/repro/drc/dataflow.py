"""Intraprocedural dataflow with interprocedural function summaries.

The checkpoint-completeness family (DRC151-153) needs to know, for a
kernel class, *which attributes of the object are written or mutated on
the run/drain paths* and *which attributes a checkpoint codec reads* —
including effects that happen in another module entirely (the batch
kernel hands itself to ``repro.core._batchcore.advance_window``, which
writes two dozen ``switch._x`` fields back).  The RNG rules reuse the
same call-resolution machinery.

The engine computes, per function, a :class:`ParamEffects` summary for
each parameter: attribute *reads*, attribute *writes* (``p.a = v``,
``p.a += v``), and attribute *mutations* — stores through a subscript or
nested attribute (``p.a[i] = v``, ``p.a.b = v``), method calls through
the attribute (``p.a.append(x)``, ``bank = p.banks[i]; bank.store(w)``),
and calls of bound-method aliases (``f = p.a.append; f(x)``).  Calls are
resolved through the :class:`~repro.drc.graph.ProjectGraph` (module
*and* function-local imports) and callee summaries are merged into the
caller's, so effects propagate across module boundaries.  ``p.m()``
where ``m`` is a method of the enclosing class follows into the method;
recursion is cut with an in-progress guard (the partial summary is a
sound under-approximation for the cyclic edge only).

Every recorded effect keeps its *sites* — ``(module, node)`` pairs — so
rules can anchor findings at the first offending line and honour
``# drc: checkpoint-exempt`` markers written on any assignment site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.drc.graph import FunctionInfo, ProjectGraph, imports_in, module_qname
from repro.drc.rules import LintModule

#: per-attribute site lists are capped (anchoring needs the first few)
_MAX_SITES = 16

Site = tuple[LintModule, ast.AST]

# local alias kinds: the object itself, or a value reached through one
# attribute of it (`x = p.a`, `x = p.a[i]`, `f = p.a.append` all map to
# ("attr", param, "a") — mutating through x mutates p.a)
_Alias = tuple[str, str] | tuple[str, str, str]


@dataclass
class ParamEffects:
    """Attribute-level effects of one function on one parameter."""

    reads: dict[str, list[Site]] = field(default_factory=dict)
    writes: dict[str, list[Site]] = field(default_factory=dict)
    mutates: dict[str, list[Site]] = field(default_factory=dict)

    @staticmethod
    def _record(bucket: dict[str, list[Site]], attr: str, site: Site) -> None:
        sites = bucket.setdefault(attr, [])
        if len(sites) < _MAX_SITES:
            sites.append(site)

    def read(self, attr: str, site: Site) -> None:
        self._record(self.reads, attr, site)

    def write(self, attr: str, site: Site) -> None:
        self._record(self.writes, attr, site)

    def mutate(self, attr: str, site: Site) -> None:
        self._record(self.mutates, attr, site)

    def merge(self, other: "ParamEffects") -> None:
        for bucket, theirs in ((self.reads, other.reads),
                               (self.writes, other.writes),
                               (self.mutates, other.mutates)):
            for attr, sites in theirs.items():
                for site in sites:
                    self._record(bucket, attr, site)

    def is_mutating(self) -> bool:
        return bool(self.writes or self.mutates)

    def mutable_attrs(self) -> dict[str, list[Site]]:
        """attr -> mutation sites (writes and mutations, line-ordered)."""
        out: dict[str, list[Site]] = {}
        for bucket in (self.writes, self.mutates):
            for attr, sites in bucket.items():
                out.setdefault(attr, []).extend(sites)
        for sites in out.values():
            sites.sort(key=lambda s: (s[0].relpath,
                                      getattr(s[1], "lineno", 0)))
        return out

    def accessed_attrs(self) -> set[str]:
        return set(self.reads) | set(self.mutates)


def param_names(fn: FunctionInfo) -> list[str]:
    a = fn.node.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


def _peel_chain(expr: ast.expr) -> tuple[ast.expr, list[str]]:
    """Root expression and the attribute names along an access chain,
    outermost last (``p.a[i].b`` -> root ``p``, attrs ``["a", "b"]``)."""
    attrs: list[str] = []
    while True:
        if isinstance(expr, ast.Attribute):
            attrs.append(expr.attr)
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            return expr, list(reversed(attrs))


class DataflowEngine:
    """Memoized per-function parameter-effect summaries over a graph."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self._cache: dict[str, dict[str, ParamEffects]] = {}
        self._in_progress: set[str] = set()

    # -- public API --------------------------------------------------------

    def function_summary(self, fn: FunctionInfo,
                         follow: bool = True) -> dict[str, ParamEffects]:
        """Per-parameter effects of ``fn`` (interprocedural if follow)."""
        if not follow:
            return self._analyze(fn, follow=False)
        cached = self._cache.get(fn.qname)
        if cached is not None:
            return cached
        if fn.qname in self._in_progress:
            return {}
        self._in_progress.add(fn.qname)
        try:
            summary = self._analyze(fn, follow=True)
        finally:
            self._in_progress.discard(fn.qname)
        self._cache[fn.qname] = summary
        return summary

    def object_effects(self, cls_qname: str,
                       entries: list[str]) -> ParamEffects:
        """Effects on an instance of ``cls_qname`` reachable from the
        named entry methods (e.g. ``["run", "drain"]``)."""
        methods = self.graph.methods_of(cls_qname)
        total = ParamEffects()
        for name in entries:
            fn = methods.get(name)
            if fn is None:
                continue
            names = param_names(fn)
            if not names:
                continue
            summary = self.function_summary(fn)
            eff = summary.get(names[0])
            if eff is not None:
                total.merge(eff)
        return total

    # -- analysis ----------------------------------------------------------

    def _analyze(self, fn: FunctionInfo, follow: bool) -> dict[str, ParamEffects]:
        mod = fn.module
        params = param_names(fn)
        effects: dict[str, ParamEffects] = {p: ParamEffects() for p in params}
        if not params:
            return effects
        local_env = imports_in(
            [s for s in ast.walk(fn.node) if isinstance(s, ast.stmt)],
            module_qname(mod.relpath), False,
        )
        aliases = self._collect_aliases(fn.node, set(params))

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if (isinstance(node.value, ast.Name)
                        and node.value.id in effects):
                    effects[node.value.id].read(node.attr, (mod, node))
                else:
                    aroot = node.value
                    if (isinstance(aroot, ast.Name) and aroot.id in aliases
                            and aliases[aroot.id][0] == "obj"):
                        effects[aliases[aroot.id][1]].read(node.attr,
                                                           (mod, node))
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                 ast.Delete)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.Delete):
                    targets = node.targets
                else:
                    targets = [node.target]
                for target in targets:
                    for leaf in self._store_leaves(target):
                        self._record_store(leaf, effects, aliases,
                                           mod, node)
            elif isinstance(node, ast.Call):
                self._handle_call(node, fn, effects, aliases, local_env,
                                  mod, follow)
        return effects

    @staticmethod
    def _store_leaves(target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.expr] = []
            for elt in target.elts:
                out.extend(DataflowEngine._store_leaves(elt))
            return out
        if isinstance(target, ast.Starred):
            return DataflowEngine._store_leaves(target.value)
        return [target]

    def _record_store(self, target: ast.expr,
                      effects: dict[str, ParamEffects],
                      aliases: dict[str, _Alias],
                      mod: LintModule, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            return  # local rebinding
        root, attrs = _peel_chain(target)
        if not isinstance(root, ast.Name) or not attrs:
            return
        site: Site = (mod, target)
        if root.id in effects:
            plain = (isinstance(target, ast.Attribute)
                     and isinstance(target.value, ast.Name))
            if plain and len(attrs) == 1:
                effects[root.id].write(attrs[0], site)
            else:
                effects[root.id].mutate(attrs[0], site)
        else:
            alias = aliases.get(root.id)
            if alias is None:
                return
            if alias[0] == "obj":
                if len(attrs) == 1 and isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name):
                    effects[alias[1]].write(attrs[0], site)
                else:
                    effects[alias[1]].mutate(attrs[0], site)
            else:
                effects[alias[1]].mutate(alias[2], site)

    def _collect_aliases(self, fnode: ast.AST,
                         params: set[str]) -> dict[str, _Alias]:
        aliases: dict[str, _Alias] = {}
        # iterate to a fixpoint so alias-of-alias chains resolve (2 passes
        # cover everything seen in practice; cap at 4 defensively)
        for _ in range(4):
            changed = False
            for node in ast.walk(fnode):
                pairs: list[tuple[ast.expr, ast.expr]] = []
                if isinstance(node, ast.Assign) and len(node.targets) >= 1:
                    pairs = [(t, node.value) for t in node.targets]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    pairs = [(node.target, node.iter)]
                for target, value in pairs:
                    if not isinstance(target, ast.Name):
                        continue
                    root, attrs = _peel_chain(value)
                    alias: _Alias | None = None
                    if isinstance(root, ast.Name):
                        if root.id in params:
                            alias = (("obj", root.id) if not attrs
                                     else ("attr", root.id, attrs[0]))
                        elif root.id in aliases:
                            prev = aliases[root.id]
                            if prev[0] == "obj":
                                alias = (("obj", prev[1]) if not attrs
                                         else ("attr", prev[1], attrs[0]))
                            else:
                                alias = prev
                    if alias is not None and aliases.get(target.id) != alias:
                        aliases[target.id] = alias
                        changed = True
            if not changed:
                break
        return aliases

    # -- calls -------------------------------------------------------------

    def _handle_call(self, call: ast.Call, fn: FunctionInfo,
                     effects: dict[str, ParamEffects],
                     aliases: dict[str, _Alias],
                     local_env: dict[str, str],
                     mod: LintModule, follow: bool) -> None:
        func = call.func

        def owner_method(name: str) -> FunctionInfo | None:
            if fn.owner is None:
                return None
            return self.graph.methods_of(fn.owner).get(name)

        # receiver analysis: calls through the tracked object
        if isinstance(func, ast.Attribute):
            root, attrs = _peel_chain(func)
            if isinstance(root, ast.Name):
                if root.id in effects:
                    if len(attrs) == 1:
                        method = owner_method(attrs[0])
                        if method is not None and follow:
                            self._follow(call, method, root.id, 1,
                                         effects, aliases)
                        elif method is None and fn.owner is None:
                            # method call on a bare param of a free
                            # function: conservatively the object itself
                            # is mutated ("" = the whole object)
                            effects[root.id].mutate("", (mod, call))
                        return
                    effects[root.id].mutate(attrs[0], (mod, call))
                    return
                alias = aliases.get(root.id)
                if alias is not None and alias[0] == "attr":
                    effects[alias[1]].mutate(alias[2], (mod, call))
                    return
                if alias is not None and alias[0] == "obj":
                    if len(attrs) == 1:
                        method = owner_method(attrs[0])
                        if method is not None and follow:
                            self._follow(call, method, alias[1], 1,
                                         effects, aliases)
                        return
                    effects[alias[1]].mutate(attrs[0], (mod, call))
                    return
            elif (isinstance(root, ast.Call)
                  and isinstance(root.func, ast.Name)
                  and root.func.id == "super" and attrs):
                method = owner_method(attrs[0])
                if method is not None and follow and effects:
                    selfname = next(iter(effects))
                    self._follow(call, method, selfname, 1, effects, aliases)
                return
        elif isinstance(func, ast.Name):
            alias = aliases.get(func.id)
            if alias is not None:
                if alias[0] == "attr":
                    method = owner_method(alias[2])
                    if method is not None and follow:
                        self._follow(call, method, alias[1], 1,
                                     effects, aliases)
                    else:
                        effects[alias[1]].mutate(alias[2], (mod, call))
                return

        # plain project-function call: map arguments onto callee summary
        if not follow:
            return
        qname = self.graph.resolve_node(mod, func, local_env)
        if qname is None:
            return
        callee = self.graph.functions.get(qname)
        if callee is None:
            return
        self._map_args(call, callee, 0, effects, aliases, mod)

    def _follow(self, call: ast.Call, callee: FunctionInfo,
                obj_param: str, offset: int,
                effects: dict[str, ParamEffects],
                aliases: dict[str, _Alias]) -> None:
        """Bound-method call: merge callee's self-effects onto obj_param,
        then map the remaining arguments."""
        names = param_names(callee)
        if not names:
            return
        summary = self.function_summary(callee)
        eff = summary.get(names[0])
        if eff is not None and obj_param in effects:
            effects[obj_param].merge(eff)
        self._map_args(call, callee, offset, effects, aliases, callee.module)

    def _map_args(self, call: ast.Call, callee: FunctionInfo, offset: int,
                  effects: dict[str, ParamEffects],
                  aliases: dict[str, _Alias], mod: LintModule) -> None:
        names = param_names(callee)
        summary = self.function_summary(callee)

        def bind(arg: ast.expr, pname: str | None) -> None:
            if pname is None:
                return
            eff = summary.get(pname)
            if eff is None:
                return
            root, attrs = _peel_chain(arg)
            if not isinstance(root, ast.Name):
                return
            if root.id in effects and not attrs:
                effects[root.id].merge(eff)
                return
            target: tuple[str, str] | None = None
            if root.id in effects and attrs:
                target = (root.id, attrs[0])
            else:
                alias = aliases.get(root.id)
                if alias is not None and alias[0] == "obj":
                    if not attrs:
                        effects[alias[1]].merge(eff)
                        return
                    target = (alias[1], attrs[0])
                elif alias is not None and alias[0] == "attr":
                    target = (alias[1], alias[2])
            if target is not None and eff.is_mutating():
                effects[target[0]].mutate(target[1], (mod, call))

        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            idx = i + offset
            bind(arg, names[idx] if idx < len(names) else None)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in names:
                bind(kw.value, kw.arg)
