"""Simulation substrate: cycle kernel, packets, statistics, deterministic RNG."""

from repro.sim.engine import Clocked, Engine, Register, ShiftPipeline
from repro.sim.packet import Cell, Packet, Word, reset_packet_ids
from repro.sim.rng import DEFAULT_SEED, make_rng, spawn
from repro.sim.stats import Counter, Histogram, SwitchStats

__all__ = [
    "Clocked",
    "Engine",
    "Register",
    "ShiftPipeline",
    "Cell",
    "Packet",
    "Word",
    "reset_packet_ids",
    "DEFAULT_SEED",
    "make_rng",
    "spawn",
    "Counter",
    "Histogram",
    "SwitchStats",
]
