"""Versioned checkpoint/restore for the pipelined-switch kernels.

Simics-style snapshotting (see ROADMAP): the *complete* simulation state —
switch datapath (banks, latches, arbiter/control pipeline, in-flight
quanta chains), packet-source RNG streams and tape positions, telemetry
registry/event-log/sample cursors, sanitizer evidence, and the global
packet-id counter — is serialized to one JSON document, and restoring it
yields a switch for which

    run(N)  ==  checkpoint at k; restore; run(N - k)

**bit for bit**: every statistic, Welford accumulator, latency histogram,
drop-taxonomy entry and telemetry event is identical, whether the restore
happens in the same process or a fresh one (`tests/checkpoint/` pins this
with a hypothesis property test across all three kernels).

Design rules:

* **Snapshots happen at ``run()``/``drain()`` boundaries only.**  The
  checked and fast kernels are well-defined between any two ticks; the
  batch kernel additionally requires its window logs to be flushed, which
  ``run()`` guarantees.  Mid-tick state is never serialized.
* **Refuse loudly, never approximate** (the ``FastPathUnsupportedError``
  discipline): a source type without a codec, a non-PCG64 generator, a
  switch mid-``drain`` — each raises :class:`CheckpointUnsupportedError`
  instead of producing a snapshot that would resume *almost* identically.
* **Floats travel as C99 hex literals** (``float.hex`` round-trips every
  value including ``inf``/``nan`` exactly), so order-sensitive Welford
  accumulators survive the JSON round trip bit for bit.
* **Payloads are derived, not stored**: every word-level payload is
  ``deterministic_payload(uid, ...)`` by construction, so snapshots store
  uids and re-derive payloads on restore (verified at save time).

The document layout is versioned (:data:`SNAPSHOT_FORMAT`,
:data:`SNAPSHOT_VERSION`); loaders reject unknown formats/versions rather
than guessing.  See ARCHITECTURE.md §15 for the on-disk schema and the
per-kernel support matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.arbiter import Priority, WriteRequest
from repro.core.buffer_manager import PacketRecord
from repro.core.control import ControlWord, WaveOp
from repro.core.errors import ConfigError
from repro.core.fastpath import FastPipelinedSwitch
from repro.core.sources import (
    BatchRenewalSource,
    PacketSource,
    RenewalPacketSource,
    SaturatingSource,
    TracePacketSource,
    deterministic_payload,
)
from repro.core.switch import PipelinedSwitch, PipelinedSwitchConfig
from repro.drc.sanitizer import Sanitizer, SanitizerError
from repro.sim.packet import Packet, Word, packet_id_state, set_packet_id_state
from repro.sim.stats import Counter, Histogram, SwitchStats
from repro.telemetry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Telemetry,
)

SNAPSHOT_FORMAT = "repro-checkpoint"
#: Version 2 added the admission-policy spec to the config codec, the
#: ``policy_drops`` counter to the collectors block, and the policy
#: runtime-state document.  Version 1 documents predate pluggable
#: admission and are still read: they can only have been produced under
#: complete sharing, so defaulting the missing fields is exact, not a
#: guess.
SNAPSHOT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


class CheckpointError(ConfigError):
    """A snapshot could not be taken or restored (bad state, bad document)."""


class CheckpointUnsupportedError(CheckpointError):
    """This object is outside the checkpoint subsystem's support matrix;
    refused rather than approximated (the ``FastPathUnsupportedError``
    discipline applied to serialization)."""


# ---------------------------------------------------------------------------
# scalar codecs
# ---------------------------------------------------------------------------

def _ff(x: float) -> str:
    """Float -> exact hex literal (``inf``/``nan`` round-trip natively)."""
    return float(x).hex()


def _df(s: str) -> float:
    return float.fromhex(s)


def _counter_doc(c: Counter) -> list:
    return [c.count, _ff(c._mean), _ff(c._m2), _ff(c.minimum), _ff(c.maximum)]


def _counter_from(doc: list, c: Counter) -> None:
    c.count = doc[0]
    c._mean = _df(doc[1])
    c._m2 = _df(doc[2])
    c.minimum = _df(doc[3])
    c.maximum = _df(doc[4])


def _hist_doc(h: Histogram, sort: bool = False) -> dict:
    items = sorted(h.counts.items()) if sort else h.counts.items()
    return {"counts": [[k, v] for k, v in items], "total": h.total}


def _hist_from(doc: dict, h: Histogram) -> None:
    h.counts = {int(k): int(v) for k, v in doc["counts"]}
    h.total = doc["total"]


def _stats_doc(s: SwitchStats, sort_hists: bool = False) -> dict:
    return {
        "n_outputs": s.n_outputs,
        "warmup": s.warmup,
        "offered": s.offered,
        "accepted": s.accepted,
        "dropped": s.dropped,
        "delivered": s.delivered,
        "delay": _counter_doc(s.delay),
        "delay_hist": _hist_doc(s.delay_hist, sort=sort_hists),
        "per_output_delivered": list(s.per_output_delivered),
        "horizon": s.horizon,
    }


def _stats_from(doc: dict, s: SwitchStats) -> None:
    s.warmup = doc["warmup"]
    s.offered = doc["offered"]
    s.accepted = doc["accepted"]
    s.dropped = doc["dropped"]
    s.delivered = doc["delivered"]
    _counter_from(doc["delay"], s.delay)
    _hist_from(doc["delay_hist"], s.delay_hist)
    s.per_output_delivered = [int(x) for x in doc["per_output_delivered"]]
    s.horizon = doc["horizon"]


def _plain(x: Any) -> Any:
    """Recursively turn numpy integers into JSON-safe Python ints."""
    if isinstance(x, dict):
        return {k: _plain(v) for k, v in x.items()}
    if isinstance(x, (list, tuple)):
        return [_plain(v) for v in x]
    if isinstance(x, np.integer):
        return int(x)
    return x


def _rng_doc(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    if state.get("bit_generator") != "PCG64":
        raise CheckpointUnsupportedError(
            f"only PCG64 generators (numpy default_rng) are snapshot-safe, "
            f"got {state.get('bit_generator')!r}"
        )
    return _plain(state)


def _rng_from(doc: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = doc
    return rng


# ---------------------------------------------------------------------------
# word / packet / control-word codecs
# ---------------------------------------------------------------------------

def _word_doc(w: Word) -> list:
    return [w.packet_uid, w.index, w.payload]


def _word_from(doc: list) -> Word:
    return Word(doc[0], doc[1], doc[2])


def _cw_doc(w: ControlWord) -> list:
    return [w.op.value, w.addr, w.in_link, w.out_link, w.packet_uid, w.quantum]


def _cw_from(doc: list) -> ControlWord:
    op, addr, in_link, out_link, uid, quantum = doc
    return ControlWord(WaveOp(op), addr, in_link=in_link, out_link=out_link,
                       packet_uid=uid, quantum=quantum)


def _packet_doc(p: Packet, cfg: PipelinedSwitchConfig) -> list:
    expected = deterministic_payload(p.uid, cfg.packet_words, cfg.width_bits)
    if tuple(p.payload) != expected:
        raise CheckpointError(
            f"packet {p.uid} carries a non-deterministic payload; snapshots "
            f"store uids and re-derive payloads, so this state cannot be "
            f"serialized exactly"
        )
    return [p.src, p.dst, p.arrival_cycle, p.depart_first_cycle,
            p.depart_last_cycle, p.uid]


def _packet_from(doc: list, cfg: PipelinedSwitchConfig) -> Packet:
    src, dst, arrival, first, last, uid = doc
    return Packet(
        src=src, dst=dst,
        payload=deterministic_payload(uid, cfg.packet_words, cfg.width_bits),
        arrival_cycle=arrival, depart_first_cycle=first,
        depart_last_cycle=last, uid=uid,
    )


# ---------------------------------------------------------------------------
# config codec
# ---------------------------------------------------------------------------

def _config_doc(cfg: PipelinedSwitchConfig) -> dict:
    return {
        "n": cfg.n,
        "addresses": cfg.addresses,
        "width_bits": cfg.width_bits,
        "depth": cfg.depth,
        "quanta": cfg.quanta,
        "priority": cfg.priority.value,
        "cut_through": cfg.cut_through,
        "credit_flow": cfg.credit_flow,
        "credits_per_input": cfg.credits_per_input,
        "downstream_credits": cfg.downstream_credits,
        "downstream_rtt": cfg.downstream_rtt,
        "link_pipeline_stages": cfg.link_pipeline_stages,
        "policy": cfg.policy.spec,
    }


def _config_from(doc: dict) -> PipelinedSwitchConfig:
    return PipelinedSwitchConfig(
        n=doc["n"],
        addresses=doc["addresses"],
        width_bits=doc["width_bits"],
        depth=doc["depth"],
        quanta=doc["quanta"],
        priority=Priority(doc["priority"]),
        cut_through=doc["cut_through"],
        credit_flow=doc["credit_flow"],
        credits_per_input=doc["credits_per_input"],
        downstream_credits=doc["downstream_credits"],
        downstream_rtt=doc["downstream_rtt"],
        link_pipeline_stages=doc["link_pipeline_stages"],
        policy=doc.get("policy", "complete"),  # absent in version-1 docs
    )


# ---------------------------------------------------------------------------
# source codecs (type-tagged)
# ---------------------------------------------------------------------------

def _source_doc(src: PacketSource) -> dict:
    base = {"n_out": src.n_out, "packet_words": src.packet_words,
            "width_bits": src.width_bits}
    t = type(src)
    if t is RenewalPacketSource:
        base.update(type="renewal", load=_ff(src.load), rng=_rng_doc(src.rng))
        return base
    if t is BatchRenewalSource:
        base.update(
            type="renewal_tape",
            load=_ff(src.load),
            u_rng=[_rng_doc(g) for g in src._u_rng],
            d_rng=[_rng_doc(g) for g in src._d_rng],
            tape_cycle=[a.tolist() for a in src._tape_cycle],
            tape_dst=[a.tolist() for a in src._tape_dst],
            next_draw=list(src._next_draw),
        )
        return base
    if t is SaturatingSource:
        base.update(
            type="saturating",
            dests=list(src.dests) if src.dests is not None else None,
            rng=_rng_doc(src.rng),
        )
        return base
    if t is TracePacketSource:
        base.update(
            type="trace",
            schedule=[[link, [[c, d] for c, d in items]]
                      for link, items in sorted(src.schedule.items())],
            next_idx=[[link, src._next_idx[link]]
                      for link in sorted(src._next_idx)],
        )
        return base
    raise CheckpointUnsupportedError(
        f"{t.__name__} has no snapshot codec; checkpointable sources are "
        f"RenewalPacketSource, BatchRenewalSource, SaturatingSource and "
        f"TracePacketSource"
    )


def _source_from(doc: dict) -> PacketSource:
    kind = doc["type"]
    n_out = doc["n_out"]
    packet_words = doc["packet_words"]
    width_bits = doc["width_bits"]
    if kind == "renewal":
        src = RenewalPacketSource(n_out, packet_words, load=_df(doc["load"]),
                                  width_bits=width_bits, seed=0)
        src.rng = _rng_from(doc["rng"])
        return src
    if kind == "renewal_tape":
        tape = BatchRenewalSource(n_out, packet_words, load=_df(doc["load"]),
                                  width_bits=width_bits, seed=0)
        tape._u_rng = [_rng_from(d) for d in doc["u_rng"]]
        tape._d_rng = [_rng_from(d) for d in doc["d_rng"]]
        tape._tape_cycle = [np.array(a, dtype=np.int64)
                            for a in doc["tape_cycle"]]
        tape._tape_dst = [np.array(a, dtype=np.int64) for a in doc["tape_dst"]]
        tape._next_draw = [int(x) for x in doc["next_draw"]]
        return tape
    if kind == "saturating":
        src = SaturatingSource(
            n_out, packet_words,
            dests=list(doc["dests"]) if doc["dests"] is not None else None,
            width_bits=width_bits, seed=0,
        )
        src.rng = _rng_from(doc["rng"])
        return src
    if kind == "trace":
        schedule = {int(link): [(int(c), int(d)) for c, d in items]
                    for link, items in doc["schedule"]}
        src = TracePacketSource(n_out, packet_words, schedule,
                                width_bits=width_bits)
        src._next_idx = {int(link): int(idx) for link, idx in doc["next_idx"]}
        return src
    raise CheckpointError(f"unknown source type {kind!r} in snapshot")


# ---------------------------------------------------------------------------
# telemetry codec
# ---------------------------------------------------------------------------

def _telemetry_doc(tel: Telemetry | None) -> dict | None:
    if tel is None or not tel.enabled:
        return None
    if not (tel.metrics.enabled and tel.events.enabled):
        raise CheckpointUnsupportedError(
            "telemetry bundles mixing live and null channels cannot be "
            "snapshotted; use Telemetry.on() (all channels live) or "
            "Telemetry.off()"
        )
    metrics: list = []
    for m in tel.metrics:  # registry iteration is (name, labels)-sorted
        labels = [[k, v] for k, v in m.labels]
        if isinstance(m, CounterMetric):
            metrics.append([m.name, labels, "counter", m.value])
        elif isinstance(m, GaugeMetric):
            metrics.append([m.name, labels, "gauge",
                            [_ff(m.value), _ff(m.minimum), _ff(m.maximum)]])
        elif isinstance(m, HistogramMetric):
            h = m.hist
            metrics.append([m.name, labels, "histogram", {
                "edges": [_ff(e) for e in h.edges],
                "counts": list(h.counts),
                "total": h.total,
                "sum": _ff(h.sum),
                "min": _ff(h.minimum),
                "max": _ff(h.maximum),
            }])
        else:
            raise CheckpointUnsupportedError(
                f"unknown metric type {type(m).__name__} in registry"
            )
    doc: dict = {
        "sample_interval": tel.sample_interval,
        "samples": [[c, occ] for c, occ in tel.samples],
        "events": [[e.cycle, e.kind, e.uid, e.src, e.dst, e.cause, e.aux]
                   for e in tel.events.events],
        "metrics": metrics,
    }
    from repro.obs.sampling import SampledEventLog
    if isinstance(tel.events, SampledEventLog):
        doc["events_sampling"] = {"rate": _ff(tel.events.rate),
                                  "seed": tel.events.seed}
    if tel.series is not None:
        state = tel.series.state()
        # Wall stamps round-trip (so a restored ring exports the same rows)
        # but are stripped from fingerprint_doc — they are not state.
        state["walls"] = [_ff(w) for w in state["walls"]]
        doc["series"] = state
    return doc


def _telemetry_from(doc: dict | None) -> Telemetry | None:
    if doc is None:
        return None
    from repro.obs.sampling import SampledEventLog
    from repro.obs.series import SeriesRing
    events = None
    sampling = doc.get("events_sampling")
    if sampling is not None:
        events = SampledEventLog(_df(sampling["rate"]), int(sampling["seed"]))
    series = None
    series_doc = doc.get("series")
    if series_doc is not None:
        series = SeriesRing.from_state(
            {**series_doc, "walls": [_df(w) for w in series_doc["walls"]]}
        )
    tel = Telemetry.on(doc["sample_interval"], events=events, series=series)
    tel.samples = [(int(c), int(occ)) for c, occ in doc["samples"]]
    emit = tel.events.emit
    for cycle, kind, uid, src, dst, cause, aux in doc["events"]:
        emit(cycle, kind, uid, src=src, dst=dst, cause=cause, aux=aux)
    registry = tel.metrics
    for name, labels, mtype, state in doc["metrics"]:
        lab = {k: v for k, v in labels}
        if mtype == "counter":
            registry.counter(name, **lab).value = int(state)
        elif mtype == "gauge":
            g = registry.gauge(name, **lab)
            g.value = _df(state[0])
            g.minimum = _df(state[1])
            g.maximum = _df(state[2])
        elif mtype == "histogram":
            edges = tuple(_df(e) for e in state["edges"])
            hm = registry.histogram(name, edges=edges, **lab)
            hm.hist.counts = [int(c) for c in state["counts"]]
            hm.hist.total = state["total"]
            hm.hist.sum = _df(state["sum"])
            hm.hist.minimum = _df(state["min"])
            hm.hist.maximum = _df(state["max"])
        else:
            raise CheckpointError(f"unknown metric type {mtype!r} in snapshot")
    return tel


# ---------------------------------------------------------------------------
# sanitizer codec
# ---------------------------------------------------------------------------

def _sanitizer_doc(san: Sanitizer | None) -> dict | None:
    if san is None or not san.enabled:
        return None
    return {
        "halt": san.halt,
        "cycles_checked": san.cycles_checked,
        "injected": san.injected,
        "delivered": san.delivered,
        "dropped": san.dropped,
        "violations": [[v.code, v.cycle, v._message, v.context]
                       for v in san.violations],
        "bank_cycle": san._bank_cycle,
        "bank_uses": [[b, u] for b, u in sorted(san._bank_uses.items())],
        "init_cycle": san._init_cycle,
        "init_uid": san._init_uid,
        "addr_of": [[uid, [[q, a] for q, a in sorted(quanta.items())]]
                    for uid, quanta in sorted(san._addr_of.items())],
    }


def _sanitizer_from(doc: dict | None, tel: Telemetry | None) -> Sanitizer | None:
    if doc is None:
        return None
    san = Sanitizer(telemetry=tel, halt=doc["halt"])
    san.cycles_checked = doc["cycles_checked"]
    san.injected = doc["injected"]
    san.delivered = doc["delivered"]
    san.dropped = doc["dropped"]
    san.violations = [SanitizerError(code, cycle, message, **context)
                      for code, cycle, message, context in doc["violations"]]
    san._bank_cycle = doc["bank_cycle"]
    san._bank_uses = {int(b): int(u) for b, u in doc["bank_uses"]}
    san._init_cycle = doc["init_cycle"]
    san._init_uid = doc["init_uid"]
    san._addr_of = {
        int(uid): {int(q): int(a) for q, a in quanta}
        for uid, quanta in doc["addr_of"]
    }
    return san


# ---------------------------------------------------------------------------
# shared statistics block (identical collectors on all three kernels)
# ---------------------------------------------------------------------------

def _collectors_doc(sw: Any, sort_hists: bool = False) -> dict:
    return {
        "stats": _stats_doc(sw.stats, sort_hists=sort_hists),
        "ct_latency": _counter_doc(sw.ct_latency),
        "ct_latency_hist": _hist_doc(sw.ct_latency_hist, sort=sort_hists),
        "total_latency": _counter_doc(sw.total_latency),
        "stagger_extra": _counter_doc(sw.stagger_extra),
        "waves": [sw.cut_through_waves, sw.plain_read_waves, sw.write_waves,
                  sw.idle_cycles, sw.deadline_overrides, sw.overrun_drops,
                  sw.policy_drops],
        "unobstructed": sorted(sw._unobstructed),
    }


def _collectors_from(doc: dict, sw: Any) -> None:
    _stats_from(doc["stats"], sw.stats)
    _counter_from(doc["ct_latency"], sw.ct_latency)
    _hist_from(doc["ct_latency_hist"], sw.ct_latency_hist)
    _counter_from(doc["total_latency"], sw.total_latency)
    _counter_from(doc["stagger_extra"], sw.stagger_extra)
    waves = doc["waves"]
    (sw.cut_through_waves, sw.plain_read_waves, sw.write_waves,
     sw.idle_cycles, sw.deadline_overrides, sw.overrun_drops) = waves[:6]
    # Version-1 documents predate policy drops (always complete sharing).
    sw.policy_drops = waves[6] if len(waves) > 6 else 0
    sw._unobstructed = set(doc["unobstructed"])


# ---------------------------------------------------------------------------
# checked kernel
# ---------------------------------------------------------------------------

def _snap_checked(sw: PipelinedSwitch) -> dict:
    cfg = sw.config
    if type(sw.source).__name__ == "_MuteSource":
        raise CheckpointError(
            "cannot snapshot mid-drain (the source is muted); checkpoint at "
            "a run()/drain() boundary"
        )
    if any(x is not None for x in sw.out_row._next):
        raise CheckpointError(
            "output register row holds uncommitted state; snapshots are only "
            "defined at run() boundaries"
        )
    records: dict[int, PacketRecord] = {}
    for addr in sorted(sw.buffer._by_addr):
        rec = sw.buffer._by_addr[addr]
        records.setdefault(rec.uid, rec)
    body = {
        "banks": [{
            "cells": [[a, w.packet_uid, w.index, w.payload]
                      for a, w in enumerate(bank._cells) if w is not None],
            "last_access": bank._last_access_cycle,
            "reads": bank.reads,
            "writes": bank.writes,
        } for bank in sw.banks],
        "in_latches": [{
            "words": [[k, _word_doc(w)]
                      for k, w in enumerate(row._words) if w is not None],
            "live": [k for k, c in enumerate(row._consumed) if not c],
        } for row in sw.in_latches],
        "out_row": [[k, _word_doc(sw.out_row._words[k]), sw.out_row._links[k]]
                    for k in range(cfg.depth)
                    if sw.out_row._words[k] is not None],
        "control": [_cw_doc(w) if w is not None else None
                    for w in sw.control._stages],
        "arbiter": [sw.arbiter._out_rr, sw.arbiter._in_rr],
        "buffer": {
            "records": [[r.uid, r.src, r.dst, list(r.addrs), r.arrival_cycle,
                         r.write_init_cycle, r.read_init_cycle]
                        for r in (records[u] for u in sorted(records))],
            "free": list(sw.buffer._free),
            "queues": [[rec.uid for rec in q] for q in sw.buffer.queues],
            "peak": sw.buffer.peak_occupancy,
        },
        "departing": sorted(sw._departing),
        "chain": [[c, _cw_doc(w)] for c, w in sorted(sw._chain.items())],
        "sent": [_packet_doc(p, cfg)
                 for _, p in sorted(sw._sent.items())],
        "wire_pipe": [[due, k, _word_doc(w), link]
                      for due, k, w, link in sw._wire_pipe],
        "inputs": [{
            "incoming": (_packet_doc(st.incoming, cfg)
                         if st.incoming is not None else None),
            "next_word": st.next_word,
            "pending": ([st.pending.in_link, st.pending.dst, st.pending.uid,
                         st.pending.arrival_cycle]
                        if st.pending is not None else None),
            "discard": st.discard_current,
            "credits": st.credits,
        } for st in sw._inputs],
        "sinks": [{
            "uid": sink._uid,
            "words": list(sink._words),
            "last_cycle": sink._last_cycle,
            "head_cycle": sink._head_cycle,
        } for sink in sw.sinks],
        "next_wave_ok": list(sw.next_wave_ok),
        "out_credits": list(sw._out_credits),
        "credit_returns": [list(x) for x in sw._credit_returns],
        "trace_ended_at": sw.trace_ended_at,
    }
    body.update(_collectors_doc(sw))
    return body


def _restore_checked(
    doc: dict,
    cfg: PipelinedSwitchConfig,
    source: PacketSource,
    telemetry: Telemetry | None,
    sanitizer: Sanitizer | None,
) -> PipelinedSwitch:
    sw = PipelinedSwitch(cfg, source, telemetry=telemetry, sanitizer=sanitizer)
    body = doc["switch"]
    sw.cycle = doc["cycle"]
    for bank, bdoc in zip(sw.banks, body["banks"]):
        for addr, uid, index, payload in bdoc["cells"]:
            bank._cells[addr] = Word(uid, index, payload)
        bank._last_access_cycle = bdoc["last_access"]
        bank.reads = bdoc["reads"]
        bank.writes = bdoc["writes"]
    for row, rdoc in zip(sw.in_latches, body["in_latches"]):
        for k, wdoc in rdoc["words"]:
            row._words[k] = _word_from(wdoc)
        for k in rdoc["live"]:
            row._consumed[k] = False
    for k, wdoc, link in body["out_row"]:
        sw.out_row._words[k] = _word_from(wdoc)
        sw.out_row._links[k] = link
    sw.control._stages = [_cw_from(w) if w is not None else None
                          for w in body["control"]]
    sw.arbiter._out_rr, sw.arbiter._in_rr = body["arbiter"]
    # Buffer records must keep their identity aliasing: one PacketRecord
    # object per uid, shared by _by_addr, the queues and _departing
    # (release() checks ``_by_addr[a] is rec``).
    by_uid: dict[int, PacketRecord] = {}
    buf = sw.buffer
    buf._by_addr = {}
    for uid, src, dst, addrs, arrival, write_init, read_init in (
            body["buffer"]["records"]):
        rec = PacketRecord(uid=uid, src=src, dst=dst, addrs=list(addrs),
                           arrival_cycle=arrival, write_init_cycle=write_init,
                           read_init_cycle=read_init)
        by_uid[uid] = rec
        for a in rec.addrs:
            buf._by_addr[a] = rec
    buf._free = deque(body["buffer"]["free"])
    buf.queues = [deque(by_uid[u] for u in q)
                  for q in body["buffer"]["queues"]]
    buf.peak_occupancy = body["buffer"]["peak"]
    sw._departing = {u: by_uid[u] for u in body["departing"]}
    sw._chain = {c: _cw_from(w) for c, w in body["chain"]}
    sw._sent = {}
    for pdoc in body["sent"]:
        packet = _packet_from(pdoc, cfg)
        sw._sent[packet.uid] = packet
    sw._wire_pipe = [(due, k, _word_from(wdoc), link)
                     for due, k, wdoc, link in body["wire_pipe"]]
    for st, idoc in zip(sw._inputs, body["inputs"]):
        inc = idoc["incoming"]
        if inc is None:
            st.incoming = None
        else:
            # Alias the in-_sent object when present (integrity checks
            # compare the same Packet); a dropped-but-still-streaming
            # packet is absent from _sent and gets a fresh object.
            st.incoming = sw._sent.get(inc[5]) or _packet_from(inc, cfg)
        st.next_word = idoc["next_word"]
        pend = idoc["pending"]
        st.pending = (WriteRequest(in_link=pend[0], dst=pend[1], uid=pend[2],
                                   arrival_cycle=pend[3])
                      if pend is not None else None)
        st.discard_current = idoc["discard"]
        st.credits = idoc["credits"]
    for sink, sdoc in zip(sw.sinks, body["sinks"]):
        sink._uid = sdoc["uid"]
        sink._words = list(sdoc["words"])
        sink._last_cycle = sdoc["last_cycle"]
        sink._head_cycle = sdoc["head_cycle"]
    sw.next_wave_ok = list(body["next_wave_ok"])
    sw._out_credits = list(body["out_credits"])
    sw._credit_returns = [(c, j) for c, j in body["credit_returns"]]
    sw.trace_ended_at = body["trace_ended_at"]
    _collectors_from(body, sw)
    return sw


# ---------------------------------------------------------------------------
# fast (wave-level) kernel
# ---------------------------------------------------------------------------

def _snap_fast(sw: FastPipelinedSwitch) -> dict:
    if sw._muted:
        raise CheckpointError(
            "cannot snapshot mid-drain (the source is muted); checkpoint at "
            "a run()/drain() boundary"
        )
    live: set[int] = set()
    for q in sw._queues:
        live.update(item[0] for item in q)
    live.update(u for u in sw._in_uid if u >= 0)
    live.update(u for u in sw._pend_uid if u >= 0)
    live.update(item[1] for item in sw._stats_due)
    mask = sw._mask
    body = {
        "records": [[u] + [int(x) for x in sw._rec[u & mask]]
                    for u in sorted(live)],
        "next_uid": sw._next_uid,
        "free": sw._free,
        "peak": sw._peak_occ,
        "queues": [[list(item) for item in q] for q in sw._queues],
        "in_uid": list(sw._in_uid),
        "in_next": list(sw._in_next),
        "pend_uid": list(sw._pend_uid),
        "pend_dst": list(sw._pend_dst),
        "pend_arr": list(sw._pend_arr),
        "credits": list(sw._credits),
        "chain": sorted(sw._chain),
        "rr_out": sw._rr_out,
        "rr_in": sw._rr_in,
        "busy_until": sw._busy_until,
        "free_due": list(sw._free_due),
        "credit_due": [list(x) for x in sw._credit_due],
        "stats_due": [list(x) for x in sw._stats_due],
        "next_wave_ok": list(sw.next_wave_ok),
        "out_credits": list(sw._out_credits),
        "credit_returns": [list(x) for x in sw._credit_returns],
        "trace_ended_at": sw.trace_ended_at,
    }
    body.update(_collectors_doc(sw))
    return body


def _restore_fast(
    doc: dict,
    cfg: PipelinedSwitchConfig,
    source: PacketSource,
    telemetry: Telemetry | None,
    sanitizer: Sanitizer | None,
) -> FastPipelinedSwitch:
    sw = FastPipelinedSwitch(cfg, source, telemetry=telemetry,
                             sanitizer=sanitizer)
    body = doc["switch"]
    sw.cycle = doc["cycle"]
    sw._rec[:] = 0
    mask = sw._mask
    for uid, arrival, write_init, src, dst in body["records"]:
        sw._rec[uid & mask] = (arrival, write_init, src, dst)
    sw._next_uid = body["next_uid"]
    sw._free = body["free"]
    sw._peak_occ = body.get("peak", 0)  # absent in version-1 docs
    sw._queues = [deque(tuple(item) for item in q) for q in body["queues"]]
    sw._in_uid = list(body["in_uid"])
    sw._in_next = list(body["in_next"])
    sw._pend_uid = list(body["pend_uid"])
    sw._pend_dst = list(body["pend_dst"])
    sw._pend_arr = list(body["pend_arr"])
    sw._credits = list(body["credits"])
    sw._chain = set(body["chain"])
    sw._rr_out = body["rr_out"]
    sw._rr_in = body["rr_in"]
    sw._busy_until = body["busy_until"]
    sw._free_due = deque(body["free_due"])
    sw._credit_due = deque(tuple(x) for x in body["credit_due"])
    sw._stats_due = deque(tuple(x) for x in body["stats_due"])
    sw.next_wave_ok = list(body["next_wave_ok"])
    sw._out_credits = list(body["out_credits"])
    sw._credit_returns = deque(tuple(x) for x in body["credit_returns"])
    sw.trace_ended_at = body["trace_ended_at"]
    _collectors_from(body, sw)
    return sw


# ---------------------------------------------------------------------------
# batch kernel
# ---------------------------------------------------------------------------

def _snap_batch(sw: Any) -> dict:
    from repro.core.batchpath import _SaturatingTape

    if sw._wave_log or sw._drop_log or sw._arrive_log or sw._sample_log:
        raise CheckpointError(
            "batch kernel holds unflushed window logs; snapshots are only "
            "defined at run()/drain() boundaries"
        )
    body = {
        "batch_cycles": sw.batch_cycles,
        "jit": sw.jit_state != "off",
        "next_uid": sw._next_uid,
        "free": sw._free,
        "peak": sw._peak_occ,
        "queues": [[list(item) for item in q] for q in sw._queues],
        "pend_uid": list(sw._pend_uid),
        "pend_dst": list(sw._pend_dst),
        "pend_dbit": list(sw._pend_dbit),
        "pend_arr": list(sw._pend_arr),
        "credits": list(sw._credits),
        "stream_end": list(sw._stream_end),
        "chain": sorted(sw._chain),
        "qchecks": [list(x) for x in sw._qchecks],
        "rr_out": sw._rr_out,
        "rr_in": sw._rr_in,
        "busy_until": sw._busy_until,
        "free_due": list(sw._free_due),
        "next_wave_ok": list(sw.next_wave_ok),
        "out_credits": list(sw._out_credits),
        "credit_returns": [list(x) for x in sw._credit_returns],
        "pending_departures": [list(x) for x in sw._pending_departures],
        "lean_due": list(sw._lean_due),
        "core_due_mask": sw._core_due_mask,
        "idle_flushed": sw._idle_flushed,
        "deadline_flushed": sw._deadline_flushed,
        "tape_next_poll": (sw._tape._next_poll
                           if isinstance(sw._tape, _SaturatingTape) else None),
    }
    body.update(_collectors_doc(sw))
    return body


def _restore_batch(
    doc: dict,
    cfg: PipelinedSwitchConfig,
    source: PacketSource,
    telemetry: Telemetry | None,
) -> Any:
    from repro.core.batchpath import BatchPipelinedSwitch, _SaturatingTape

    body = doc["switch"]
    # Construct with the restored telemetry *before* overwriting state: the
    # constructor selects the lean/array-core engines from telemetry
    # presence and resolves metric handles against the restored registry.
    sw = BatchPipelinedSwitch(cfg, source, telemetry=telemetry,
                              sanitizer=None,
                              batch_cycles=body["batch_cycles"],
                              jit=body["jit"])
    sw.cycle = doc["cycle"]
    sw._next_uid = body["next_uid"]
    sw._free = body["free"]
    sw._peak_occ = body.get("peak", 0)  # absent in version-1 docs
    sw._queues = [deque(tuple(item) for item in q) for q in body["queues"]]
    sw._pend_uid = list(body["pend_uid"])
    sw._pend_dst = list(body["pend_dst"])
    sw._pend_dbit = list(body["pend_dbit"])
    sw._pend_arr = list(body["pend_arr"])
    sw._credits = list(body["credits"])
    sw._stream_end = list(body["stream_end"])
    sw._chain = set(body["chain"])
    sw._qchecks = [tuple(x) for x in body["qchecks"]]
    sw._rr_out = body["rr_out"]
    sw._rr_in = body["rr_in"]
    sw._busy_until = body["busy_until"]
    sw._free_due = deque(body["free_due"])
    sw.next_wave_ok = list(body["next_wave_ok"])
    sw._out_credits = list(body["out_credits"])
    sw._credit_returns = deque(tuple(x) for x in body["credit_returns"])
    sw._pending_departures = deque(tuple(x)
                                   for x in body["pending_departures"])
    sw._lean_due = deque(body["lean_due"])
    sw._core_due_mask = body["core_due_mask"]
    sw._idle_flushed = body["idle_flushed"]
    sw._deadline_flushed = body["deadline_flushed"]
    if body["tape_next_poll"] is not None:
        if not isinstance(sw._tape, _SaturatingTape):
            raise CheckpointError(
                "snapshot carries a saturating-tape cursor but the restored "
                "source is not a SaturatingSource"
            )
        sw._tape._next_poll = body["tape_next_poll"]
    _collectors_from(body, sw)
    return sw


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def _kernel_of(switch: Any) -> str:
    from repro.core.batchpath import BatchPipelinedSwitch

    if type(switch) is PipelinedSwitch:
        return "checked"
    if type(switch) is FastPipelinedSwitch:
        return "fast"
    if type(switch) is BatchPipelinedSwitch:
        return "batch"
    raise CheckpointUnsupportedError(
        f"{type(switch).__name__} has no snapshot codec; checkpointable "
        f"kernels are PipelinedSwitch, FastPipelinedSwitch and "
        f"BatchPipelinedSwitch"
    )


def snapshot_switch(switch: Any) -> dict:
    """Serialize ``switch`` (plus source/telemetry/sanitizer) to a document.

    The switch must be at a ``run()``/``drain()`` boundary.  Raises
    :class:`CheckpointUnsupportedError` for kernels, sources or attachments
    outside the support matrix, :class:`CheckpointError` for states that
    cannot be serialized exactly.
    """
    kernel = _kernel_of(switch)
    telemetry = switch.telemetry if switch._tel else None
    sanitizer = switch.sanitizer if switch._san else None
    if kernel == "checked":
        body = _snap_checked(switch)
    elif kernel == "fast":
        body = _snap_fast(switch)
    else:
        body = _snap_batch(switch)
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "kernel": kernel,
        "cycle": switch.cycle,
        "config": _config_doc(switch.config),
        "packet_ids": packet_id_state(),
        "source": _source_doc(switch.source),
        "telemetry": _telemetry_doc(telemetry),
        "sanitizer": _sanitizer_doc(sanitizer),
        "policy_state": switch.policy.state(),
        "switch": body,
    }


def restore_switch(doc: dict) -> Any:
    """Rebuild a switch from a snapshot document.

    The returned kernel continues bit-identically: ``restore(snapshot at
    k).run(N - k)`` equals an uninterrupted ``run(N)`` in every statistic,
    histogram, drop-taxonomy entry and telemetry event.  Also restores the
    global packet-id counter, so restore-in-a-fresh-process and
    restore-in-the-same-process are indistinguishable.
    """
    _check_format(doc)
    cfg = _config_from(doc["config"])
    source = _source_from(doc["source"])
    # Order matters: telemetry first (the kernel constructor resolves its
    # metric handles against this registry), then the sanitizer (which
    # aliases telemetry counters), then the kernel.
    telemetry = _telemetry_from(doc["telemetry"])
    sanitizer = _sanitizer_from(doc["sanitizer"], telemetry)
    kernel = doc["kernel"]
    if kernel == "checked":
        sw = _restore_checked(doc, cfg, source, telemetry, sanitizer)
    elif kernel == "fast":
        sw = _restore_fast(doc, cfg, source, telemetry, sanitizer)
    elif kernel == "batch":
        if sanitizer is not None:
            raise CheckpointError(
                "snapshot pairs a sanitizer with the batch kernel, which "
                "refuses sanitizers; the document is corrupt"
            )
        sw = _restore_batch(doc, cfg, source, telemetry)
    else:
        raise CheckpointError(f"unknown kernel {kernel!r} in snapshot")
    # Stateless policies carry None; restore_state refuses loudly if the
    # document holds state a different (or stateful) policy wrote.
    sw.policy.restore_state(doc.get("policy_state"))
    set_packet_id_state(doc["packet_ids"])
    return sw


def _check_format(doc: Any) -> None:
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError(
            f"not a {SNAPSHOT_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else doc!r})"
        )
    if doc.get("version") not in _READABLE_VERSIONS:
        raise CheckpointError(
            f"snapshot version {doc.get('version')!r} is not supported "
            f"(this build reads versions "
            f"{', '.join(str(v) for v in _READABLE_VERSIONS)})"
        )


def save(switch: Any, path: str | Path) -> dict:
    """Snapshot ``switch`` to ``path`` atomically; returns the document."""
    doc = snapshot_switch(switch)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(p.name + ".tmp")
    tmp.write_text(json.dumps(doc, separators=(",", ":")) + "\n",
                   encoding="utf-8")
    os.replace(tmp, p)
    return doc


def load(path: str | Path) -> dict:
    """Read and validate a snapshot document from ``path``."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
    _check_format(doc)
    return doc


def restore(path: str | Path) -> Any:
    """Rebuild a switch from the snapshot at ``path``."""
    return restore_switch(load(path))


def fingerprint_doc(switch: Any) -> dict:
    """The observable-state document :func:`fingerprint` hashes.

    Covers everything the bit-identical-resume contract promises:
    statistics, Welford accumulators, latency histograms (order-normalized
    — dict insertion order is presentation, not state), wave counters, the
    drop taxonomy and full event stream (cycle-sorted, the canonical
    comparable form), metric values, occupancy samples and the sanitizer
    summary.
    """
    tel = switch.telemetry if switch._tel else None
    tel_doc = None
    if tel is not None:
        tel_doc = _telemetry_doc(tel)
        tel_doc["events"] = sorted(tel_doc["events"])
        series_doc = tel_doc.get("series")
        if series_doc is not None:
            # Wall stamps are observation time, not simulation state.
            tel_doc["series"] = {k: v for k, v in series_doc.items()
                                 if k != "walls"}
    return {
        "cycle": switch.cycle,
        "collectors": _collectors_doc(switch, sort_hists=True),
        "trace_ended_at": getattr(switch, "trace_ended_at", None),
        "telemetry": tel_doc,
        "sanitizer": switch.sanitizer.summary() if switch._san else None,
    }


def fingerprint(switch: Any) -> str:
    """SHA-256 over the canonical observable state of ``switch``.

    Two switches with equal fingerprints agree on every statistic,
    histogram, drop-taxonomy entry and telemetry event — the equality the
    checkpoint property tests (and the CI save/kill/resume smoke) assert.
    """
    payload = json.dumps(fingerprint_doc(switch), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
