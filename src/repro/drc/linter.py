"""Lint driver: discovery, caching, parallel analysis, output formats.

``run_lint(paths)`` parses every ``.py`` file under the given paths into
:class:`~repro.drc.rules.LintModule`\\ s, runs the whole rule catalog
(module-scope rules file by file, project-scope rules over the whole
program via :class:`~repro.drc.rules.Project`), drops findings
suppressed with a ``# drc: disable=<code>`` comment on the offending
line, and returns the surviving violations sorted by path/line.

Engine v2 additions:

* **Incremental cache** (``cache_dir=``): content-addressed per-file and
  whole-project entries — see :mod:`repro.drc.cache`.  A warm run over
  unchanged content reconstructs the result without parsing anything
  (``files_analyzed == 0``); a partial run re-analyzes only changed
  files plus their reverse-import closure.  Output is bit-identical to
  a cold run in every case.
* **Parallel analysis** (``jobs=``): per-file parsing, hashing, and
  module-rule checking fan out over a process pool; results merge in
  input order, so findings are identical at any job count.
* ``.drc-skip`` **sentinel**: a directory containing this file is
  pruned from recursive discovery (the seeded-defect corpus under
  ``tests/drc/corpus/`` lints deliberately-broken fixtures; the repo
  self-lint must not see them).  Passing such a directory *explicitly*
  still lints it — the sentinel only prunes recursion from above.

Suppression syntax (mirrors the familiar lint tools):

* ``x = foo()  # drc: disable=DRC104`` — silence one code on this line;
* ``# drc: disable=DRC101,DRC104`` — several codes, comma-separated;
* ``# drc: disable`` — every rule on this line (use sparingly; prefer
  naming the code so the exception is auditable).

Output formats: ``text`` (one ``path:line:col: CODE message`` per line),
``json`` (a list of violation objects plus a summary), and ``sarif``
(SARIF 2.1.0, for code-scanning upload from CI).
"""

from __future__ import annotations

import ast
import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from repro.drc.cache import (
    FileEntry,
    LintCache,
    aggregate_sha,
    dirty_set,
    file_sha,
    load_cache,
    rules_fingerprint,
    save_cache,
)
from repro.drc.graph import imports_in, module_qname
from repro.drc.rules import LintModule, Project, Violation, rule_catalog

# Imported for their @register side effects: these modules contribute the
# RNG-provenance, checkpoint-completeness, and numba-compat rule families.
from repro.drc import checkpoint_rules as _checkpoint_rules  # noqa: F401
from repro.drc import numba_rules as _numba_rules  # noqa: F401
from repro.drc import rng_rules as _rng_rules  # noqa: F401

#: directories never descended into during file discovery
_SKIP_DIRS = frozenset({
    ".git", ".hg", "__pycache__", ".venv", "venv", "node_modules",
    ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist",
    ".drc-cache",
})

#: a directory containing this file is pruned from recursive discovery
SKIP_SENTINEL = ".drc-skip"

_SUPPRESS_RE = re.compile(r"#\s*drc:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?")


def discover_files(paths: Iterable[str | Path], root: Path | None = None) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files taken as-is), sorted."""
    root = Path.cwd() if root is None else root
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            if p.suffix == ".py":
                out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if any(part in _SKIP_DIRS for part in f.parts):
                    continue
                if _below_sentinel(f, p):
                    continue
                out.add(f)
    return sorted(out)


def _below_sentinel(f: Path, base: Path) -> bool:
    """True if a ``.drc-skip`` sentinel sits strictly between ``base``
    (exclusive) and ``f`` — explicitly passed directories still lint."""
    for d in f.parents:
        if d == base:
            return False
        if (d / SKIP_SENTINEL).is_file():
            return True
    return False


def parse_suppressions(source: str) -> dict[int, set[str] | None]:
    """line (1-based) -> suppressed codes; ``None`` means all codes."""
    out: dict[int, set[str] | None] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            out[i] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _suppressed(v: Violation, suppressions: dict[int, set[str] | None]) -> bool:
    codes = suppressions.get(v.line, ...)
    if codes is ...:
        return False
    return codes is None or v.code in codes  # type: ignore[union-attr]


class LintResult:
    """Violations that survived suppression, plus run accounting."""

    def __init__(self, violations: list[Violation], files_checked: int,
                 suppressed: int, parse_errors: list[Violation],
                 files_analyzed: int | None = None,
                 stats: dict[str, object] | None = None) -> None:
        self.violations = violations
        self.files_checked = files_checked
        self.suppressed = suppressed
        self.parse_errors = parse_errors
        self.files_analyzed = (files_checked if files_analyzed is None
                               else files_analyzed)
        self.stats: dict[str, object] = stats if stats is not None else {}

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.parse_errors else 0

    def all_findings(self) -> list[Violation]:
        return sorted(self.parse_errors + self.violations,
                      key=lambda v: (v.path, v.line, v.col, v.code))


@dataclass
class _FileRecord:
    """One file's worth of worker output (picklable)."""

    relpath: str
    sha: str
    mod: LintModule | None = None
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    findings: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_error: Violation | None = None
    imports: list[str] = field(default_factory=list)
    analyzed: bool = False


def _analyze_file(args: tuple[str, str, bool]) -> _FileRecord:
    """Worker: hash, parse, and (when ``run_rules``) run module-scope
    rules plus suppression filtering for one file."""
    path_str, rel, run_rules = args
    path = Path(path_str)
    try:
        data = path.read_bytes()
    except OSError as exc:
        return _FileRecord(rel, "", parse_error=Violation(
            "DRC001", rel, 1, 1, f"file could not be read: {exc}"),
            analyzed=run_rules)
    sha = file_sha(data)
    try:
        source = data.decode("utf-8")
        mod = LintModule.parse(path, rel, source)
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return _FileRecord(rel, sha, parse_error=Violation(
            "DRC001", rel, line, 1, f"file could not be parsed: {exc}"),
            analyzed=run_rules)
    record = _FileRecord(rel, sha, mod=mod,
                         suppressions=parse_suppressions(source),
                         analyzed=run_rules)
    env = imports_in(
        [s for s in ast.walk(mod.tree) if isinstance(s, ast.stmt)],
        module_qname(rel), rel.endswith("__init__.py"),
    )
    record.imports = sorted(set(env.values()))
    if run_rules:
        kept: list[Violation] = []
        for rule in rule_catalog():
            if rule.scope != "module":
                continue
            for v in rule.check_module(mod):
                if _suppressed(v, record.suppressions):
                    record.suppressed += 1
                else:
                    kept.append(v)
        record.findings = kept
    return record


def _rules_worker(args: tuple[str, str]) -> tuple[str, list[Violation], int]:
    """Parallel worker: module-scope findings for one file.

    Returns only (relpath, findings, suppressed) — never the parsed
    tree.  Shipping ASTs back through pickle costs more than the parent
    re-parsing the source, so the parent parses its own copy while the
    workers run the rules.
    """
    record = _analyze_file((args[0], args[1], True))
    return record.relpath, record.findings, record.suppressed


def _fork_rules(dirty_work: list[tuple[str, str]],
                jobs: int) -> list[tuple[int, str]] | None:
    """Fork ``jobs`` children, each running module rules over a strided
    slice of ``dirty_work`` and pickling results to a temp file.

    Returns (pid, result-path) pairs, or ``None`` where ``fork`` is
    unavailable.  Plain ``os.fork`` instead of a process pool on
    purpose: a pool's feeder/result threads contend with the parent's
    own CPU-bound parsing for the GIL (a convoy that more than doubles
    the wall time), while forked children share nothing with the parent
    but copy-on-write memory.
    """
    if not hasattr(os, "fork"):
        return None
    procs: list[tuple[int, str]] = []
    for i in range(jobs):
        chunk = dirty_work[i::jobs]
        if not chunk:
            continue
        fd, tmp = tempfile.mkstemp(prefix="drc-par-", suffix=".pkl")
        os.close(fd)
        pid = os.fork()
        if pid == 0:  # child
            code = 1
            try:
                out = [_rules_worker(w) for w in chunk]
                with open(tmp, "wb") as fh:
                    pickle.dump(out, fh, protocol=pickle.HIGHEST_PROTOCOL)
                code = 0
            finally:
                os._exit(code)
        procs.append((pid, tmp))
    return procs


def _collect_fork_rules(
    procs: list[tuple[int, str]],
) -> dict[str, tuple[list[Violation], int]] | None:
    """Reap the children; ``None`` if any failed (caller re-runs
    serially)."""
    out: dict[str, tuple[list[Violation], int]] = {}
    failed = False
    for pid, tmp in procs:
        _, status = os.waitpid(pid, 0)
        try:
            if status != 0:
                failed = True
                continue
            with open(tmp, "rb") as fh:
                for rel, findings, n_sup in pickle.load(fh):
                    out[rel] = (findings, n_sup)
        except (OSError, pickle.UnpicklingError, EOFError):
            failed = True
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return None if failed else out


def _relpath(f: Path, root: Path) -> str:
    try:
        return f.relative_to(root).as_posix()
    except ValueError:
        return f.as_posix()


def run_lint(paths: Iterable[str | Path], root: Path | None = None, *,
             jobs: int = 1, cache_dir: Path | None = None) -> LintResult:
    """Lint every Python file under ``paths``; see module docstring.

    ``jobs`` fans per-file analysis out over a process pool (findings
    are identical at any value).  ``cache_dir`` enables the incremental
    cache; ``None`` (the default) analyzes everything from scratch.
    """
    t0 = time.perf_counter()
    root = Path.cwd() if root is None else root
    files = discover_files(paths, root=root)
    rels = [_relpath(f, root) for f in files]

    cache: LintCache | None = None
    shas: dict[str, str] = {}
    if cache_dir is not None:
        cache = load_cache(cache_dir)
        for f, rel in zip(files, rels):
            try:
                shas[rel] = file_sha(f.read_bytes())
            except OSError:
                shas[rel] = ""
        agg = aggregate_sha(shas)
        if (cache is not None
                and set(shas) == set(cache.files)
                and all(cache.files[rel].sha == sha
                        for rel, sha in shas.items())
                and cache.project_agg == agg):
            return _from_cache(cache, len(files), t0, jobs)

    if cache is not None:
        dirty = dirty_set(cache, shas)
        mode = "partial" if len(dirty) < len(files) else "cold"
    else:
        dirty = set(rels)
        mode = "cold" if cache_dir is not None else "off"

    work = [(str(f), rel, rel in dirty) for f, rel in zip(files, rels)]
    dirty_work = [(p, rel) for p, rel, d in work if d]
    procs = (_fork_rules(dirty_work, jobs)
             if jobs > 1 and len(dirty_work) > 1 else None)
    if procs is not None:
        # children run module rules on dirty files; the parent parses
        # every tree (project rules need them all) in the same wall time
        records = [_analyze_file((p, rel, False)) for p, rel, _ in work]
        rule_out = _collect_fork_rules(procs)
        by_rel = {r.relpath: r for r in records}
        for p, rel in dirty_work:
            record = by_rel[rel]
            if rule_out is not None and rel in rule_out:
                record.findings, record.suppressed = rule_out[rel]
            else:  # a child died: redo this file in-process
                redone = _analyze_file((p, rel, True))
                record.findings = redone.findings
                record.suppressed = redone.suppressed
            record.analyzed = True
    else:
        records = [_analyze_file(args) for args in work]
    t_files = time.perf_counter()

    parse_errors: list[Violation] = []
    kept: list[Violation] = []
    n_suppressed = 0
    suppressions: dict[str, dict[int, set[str] | None]] = {}
    mods: list[LintModule] = []
    for record in records:
        suppressions[record.relpath] = record.suppressions
        if record.mod is not None:
            mods.append(record.mod)
        cached_entry = (cache.files.get(record.relpath)
                        if cache is not None else None)
        if not record.analyzed and cached_entry is not None:
            record.findings = list(cached_entry.findings)
            record.suppressed = cached_entry.suppressed
            if record.mod is None and cached_entry.parse_error is not None:
                record.parse_error = cached_entry.parse_error
        if record.parse_error is not None:
            parse_errors.append(record.parse_error)
        kept.extend(record.findings)
        n_suppressed += record.suppressed

    project = Project(mods)
    project_kept: list[Violation] = []
    project_suppressed = 0
    for rule in rule_catalog():
        if rule.scope != "project":
            continue
        for v in rule.check_project(project):
            if _suppressed(v, suppressions.get(v.path, {})):
                project_suppressed += 1
            else:
                project_kept.append(v)
    t_project = time.perf_counter()

    if cache_dir is not None:
        new_cache = LintCache(fingerprint=rules_fingerprint())
        for record in records:
            new_cache.files[record.relpath] = FileEntry(
                sha=record.sha or shas.get(record.relpath, ""),
                findings=list(record.findings),
                suppressed=record.suppressed,
                parse_error=record.parse_error,
                imports=list(record.imports),
            )
        new_cache.project_agg = aggregate_sha(
            {rel: e.sha for rel, e in new_cache.files.items()})
        new_cache.project_findings = list(project_kept)
        new_cache.project_suppressed = project_suppressed
        save_cache(cache_dir, new_cache)

    violations = sorted(kept + project_kept,
                        key=lambda v: (v.path, v.line, v.col, v.code))
    parse_errors.sort(key=lambda v: (v.path, v.line))
    n_analyzed = sum(1 for r in records if r.analyzed)
    stats: dict[str, object] = {
        "cache": mode,
        "jobs": jobs,
        "files_checked": len(files),
        "files_analyzed": n_analyzed,
        "elapsed": round(time.perf_counter() - t0, 6),
        "elapsed_files": round(t_files - t0, 6),
        "elapsed_project": round(t_project - t_files, 6),
    }
    return LintResult(violations, files_checked=len(files),
                      suppressed=n_suppressed + project_suppressed,
                      parse_errors=parse_errors,
                      files_analyzed=n_analyzed, stats=stats)


def _from_cache(cache: LintCache, n_files: int, t0: float,
                jobs: int) -> LintResult:
    """Full cache hit: rebuild the result without parsing anything."""
    kept: list[Violation] = []
    parse_errors: list[Violation] = []
    n_suppressed = cache.project_suppressed
    for rel in sorted(cache.files):
        entry = cache.files[rel]
        kept.extend(entry.findings)
        n_suppressed += entry.suppressed
        if entry.parse_error is not None:
            parse_errors.append(entry.parse_error)
    violations = sorted(kept + cache.project_findings,
                        key=lambda v: (v.path, v.line, v.col, v.code))
    parse_errors.sort(key=lambda v: (v.path, v.line))
    elapsed = round(time.perf_counter() - t0, 6)
    stats: dict[str, object] = {
        "cache": "hit",
        "jobs": jobs,
        "files_checked": n_files,
        "files_analyzed": 0,
        "elapsed": elapsed,
        "elapsed_files": elapsed,
        "elapsed_project": 0.0,
    }
    return LintResult(violations, files_checked=n_files,
                      suppressed=n_suppressed, parse_errors=parse_errors,
                      files_analyzed=0, stats=stats)


# -- output formats ---------------------------------------------------------

def format_text(result: LintResult) -> str:
    lines = [v.render() for v in result.all_findings()]
    n = len(result.all_findings())
    lines.append(
        f"{'No' if n == 0 else n} violation{'s' if n != 1 else ''} "
        f"in {result.files_checked} file{'s' if result.files_checked != 1 else ''}"
        + (f" ({result.suppressed} suppressed)" if result.suppressed else "")
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(
        {
            "violations": [asdict(v) for v in result.all_findings()],
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
        },
        indent=2,
    )


def format_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 — the schema GitHub code scanning ingests."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for rule in rule_catalog()
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {"startLine": v.line, "startColumn": v.col},
                    }
                }
            ],
        }
        for v in result.all_findings()
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-drc",
                        "informationUri": "https://example.invalid/repro-drc",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


FORMATTERS = {"text": format_text, "json": format_json, "sarif": format_sarif}
