"""Tests for word-level packet sources and the verifying sink."""

import pytest

from repro.core.sources import (
    PacketSink,
    RenewalPacketSource,
    SaturatingSource,
    SlotAdapterSource,
    TracePacketSource,
    deterministic_payload,
)
from repro.traffic import BernoulliUniform


def test_deterministic_payload_reproducible_and_bounded():
    a = deterministic_payload(42, 16, width_bits=16)
    b = deterministic_payload(42, 16, width_bits=16)
    assert a == b
    assert len(a) == 16
    assert all(0 <= w < (1 << 16) for w in a)
    assert deterministic_payload(43, 16) != a


def test_deterministic_payload_matches_scalar_lcg():
    """The vectorized implementation must stay bit-identical to the scalar
    recurrence it replaced — payloads are part of the trace format."""
    mask64 = (1 << 64) - 1
    for uid, size, width in [(0, 1, 16), (42, 16, 16), (7, 33, 8), (123456, 5, 32)]:
        x = (uid * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
        words = []
        for _ in range(size):
            x = (x * 6364136223846793005 + 1442695040888963407) & mask64
            words.append((x >> 17) & ((1 << width) - 1))
        got = deterministic_payload(uid, size, width_bits=width)
        assert got == tuple(words)
        assert all(type(w) is int for w in got)  # cached tuples hold py ints


def test_deterministic_payload_is_cached():
    assert deterministic_payload(99, 8) is deterministic_payload(99, 8)


def test_renewal_source_load():
    """Empirical link load approaches the configured value (driving a
    link-busy state machine as the switch does)."""
    b, load = 16, 0.6
    src = RenewalPacketSource(n_out=8, packet_words=b, load=load, seed=1)
    busy_until = -1
    busy_cycles = 0
    horizon = 200_000
    for t in range(horizon):
        if t > busy_until and src.maybe_start(t, 0) is not None:
            busy_until = t + b - 1
        if t <= busy_until:
            busy_cycles += 1
    assert busy_cycles / horizon == pytest.approx(load, abs=0.02)


def test_renewal_head_probability():
    """Unconditional head probability = p/B — the §3.4 assumption."""
    b, load = 16, 0.4
    src = RenewalPacketSource(n_out=8, packet_words=b, load=load, seed=2)
    busy_until = -1
    heads = 0
    horizon = 200_000
    for t in range(horizon):
        if t > busy_until and src.maybe_start(t, 0) is not None:
            heads += 1
            busy_until = t + b - 1
    assert heads / horizon == pytest.approx(load / b, rel=0.08)


def test_saturating_source_always_ready():
    src = SaturatingSource(n_out=4, packet_words=8, seed=3)
    assert all(src.maybe_start(t, 0) is not None for t in range(100))


def test_saturating_source_fixed_dests():
    src = SaturatingSource(n_out=4, packet_words=8, dests=[3, 1])
    assert src.maybe_start(0, 0) == 3
    assert src.maybe_start(0, 1) == 1


def test_trace_source_ordering():
    src = TracePacketSource(
        n_out=4, packet_words=8, schedule={0: [(5, 2), (6, 3)]}
    )
    assert src.maybe_start(0, 0) is None
    assert src.maybe_start(5, 0) == 2
    assert src.maybe_start(5, 0) is None  # next item's earliest cycle is 6
    assert src.maybe_start(6, 0) == 3
    assert src.maybe_start(7, 0) is None
    assert src.exhausted()


def test_slot_adapter_synchronizes_to_slot_boundaries():
    b = 8
    slotted = BernoulliUniform(2, 2, 1.0, seed=4)
    src = SlotAdapterSource(slotted, packet_words=b)
    # Only cycle multiples of b may start packets.
    assert src.maybe_start(0, 0) is not None
    assert src.maybe_start(3, 1) is None
    assert src.maybe_start(b, 1) is not None


class TestPacketSink:
    def test_accepts_well_formed_packet(self):
        sink = PacketSink(0, 4)
        for k in range(4):
            sink.deliver(10 + k, packet_uid=7, index=k, payload=k * 2)
        assert sink.delivered == [(7, 10, (0, 2, 4, 6))]
        assert not sink.mid_packet

    def test_rejects_gap_inside_packet(self):
        sink = PacketSink(0, 4)
        sink.deliver(10, 7, 0, 0)
        with pytest.raises(AssertionError):
            sink.deliver(12, 7, 1, 1)  # cycle gap

    def test_rejects_out_of_order_words(self):
        sink = PacketSink(0, 4)
        sink.deliver(10, 7, 0, 0)
        with pytest.raises(AssertionError):
            sink.deliver(11, 7, 2, 2)

    def test_rejects_interleaved_packets(self):
        sink = PacketSink(0, 4)
        sink.deliver(10, 7, 0, 0)
        with pytest.raises(AssertionError):
            sink.deliver(11, 8, 1, 1)

    def test_rejects_headless_packet(self):
        sink = PacketSink(0, 4)
        with pytest.raises(AssertionError):
            sink.deliver(10, 7, 1, 0)
