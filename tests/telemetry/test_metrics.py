"""Tests for the metrics registry and its null no-op twins."""

import pytest

from repro.telemetry import (
    NULL_METRICS,
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
)
from repro.telemetry.metrics import full_name


class TestRegistry:
    def test_counter_get_or_create(self):
        m = MetricsRegistry()
        c1 = m.counter("repro_port_arrivals_total", port=0)
        c2 = m.counter("repro_port_arrivals_total", port=0)
        assert c1 is c2
        c1.inc()
        c1.inc(2)
        assert c2.value == 3

    def test_labels_distinguish_series(self):
        m = MetricsRegistry()
        m.counter("x_total", port=0).inc()
        m.counter("x_total", port=1).inc(5)
        assert m.counter("x_total", port=0).value == 1
        assert m.counter("x_total", port=1).value == 5

    def test_gauge_tracks_extremes(self):
        m = MetricsRegistry()
        g = m.gauge("occ")
        for v in (3, 9, 1):
            g.set(v)
        assert g.value == 1
        assert g.minimum == 1 and g.maximum == 9

    def test_histogram_observe_and_percentile(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for v in range(1, 101):
            h.observe(v)
        assert h.hist.total == 100
        assert 1 <= h.percentile(50) <= 100

    def test_type_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("a")
        with pytest.raises(TypeError):
            m.gauge("a")

    def test_iteration_is_deterministic(self):
        m = MetricsRegistry()
        m.counter("b_total", port=1)
        m.counter("a_total")
        m.gauge("c")
        names = [x.name for x in m]
        assert names == sorted(names) == ["a_total", "b_total", "c"]

    def test_as_dict_round_trips_values(self):
        m = MetricsRegistry()
        m.counter("hits_total").inc(7)
        m.gauge("level").set(3)
        d = m.as_dict()
        assert d["hits_total"] == 7
        assert d["level"] == 3

    def test_full_name_formatting(self):
        assert full_name("x_total", ()) == "x_total"
        assert full_name("x_total", (("port", "3"),)) == 'x_total{port="3"}'


class TestNullObjects:
    def test_null_registry_absorbs_everything(self):
        c = NULL_METRICS.counter("anything", port=9)
        c.inc()
        c.inc(100)
        g = NULL_METRICS.gauge("g")
        g.set(42)
        h = NULL_METRICS.histogram("h")
        h.observe(1.0)
        assert list(NULL_METRICS) == []
        assert NULL_METRICS.as_dict() == {}

    def test_null_telemetry_is_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert Telemetry.off() is NULL_TELEMETRY

    def test_enabled_bundle(self):
        tel = Telemetry.on()
        assert tel.enabled
        assert Telemetry.on(sample_interval=8).sample_interval == 8

    def test_occupancy_series_summary(self):
        tel = Telemetry.on(sample_interval=4)
        for t, occ in [(0, 1), (4, 5), (8, 3)]:
            tel.sample(t, occ)
        s = tel.occupancy_series()
        assert s["samples"] == 3
        assert s["peak"] == 5
        assert s["mean"] == pytest.approx(3.0)
        assert s["last_cycle"] == 8
        assert Telemetry.on().occupancy_series() == {"samples": 0}
