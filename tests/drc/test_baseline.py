"""Baseline mode (``repro lint --diff <rev>``): pre-existing findings
are accepted, only the delta fails."""

import subprocess
from pathlib import Path

import pytest

from repro.drc import baseline_result, new_findings, run_lint


def _git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=root, check=True, capture_output=True)


@pytest.fixture()
def repo(tmp_path):
    old = (
        "def f(ports):\n"
        "    for p in set(ports):\n"
        "        yield p\n"
    )
    p = tmp_path / "src/repro/core/m.py"
    p.parent.mkdir(parents=True)
    p.write_text(old)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def test_diff_reports_only_new_findings(repo):
    p = repo / "src/repro/core/m.py"
    p.write_text(p.read_text() + (
        "def g(links):\n"
        "    return [x for x in frozenset(links)]\n"
    ))
    current = run_lint(["src"], root=repo)
    base = baseline_result("HEAD", repo, ["src"])
    fresh = new_findings(current, base)
    assert len(current.all_findings()) == 2
    assert len(fresh) == 1
    assert fresh[0].code == "DRC104" and fresh[0].line == 5


def test_diff_is_empty_when_tree_unchanged(repo):
    current = run_lint(["src"], root=repo)
    base = baseline_result("HEAD", repo, ["src"])
    assert new_findings(current, base) == []
    assert len(current.all_findings()) == 1  # the finding exists, accepted


def test_reflow_does_not_resurrect_baselined_findings(repo):
    # same finding, different line: the multiset key excludes line
    # numbers precisely so moving code around stays quiet
    p = repo / "src/repro/core/m.py"
    p.write_text("CYCLES = 9\n\n\n" + p.read_text())
    current = run_lint(["src"], root=repo)
    base = baseline_result("HEAD", repo, ["src"])
    assert new_findings(current, base) == []


def test_second_instance_of_baselined_finding_is_new(repo):
    p = repo / "src/repro/core/m.py"
    body = p.read_text()
    p.write_text(body + body.replace("def f", "def f2"))
    current = run_lint(["src"], root=repo)
    base = baseline_result("HEAD", repo, ["src"])
    assert len(new_findings(current, base)) == 1


def test_unknown_revision_raises(repo):
    with pytest.raises(RuntimeError, match="git archive"):
        baseline_result("no-such-rev", repo, ["src"])
