#!/usr/bin/env python3
"""VLSI cost explorer: sweep switch size / technology and price the designs.

Uses the calibrated silicon models to answer the §5 design questions for
arbitrary configurations: how big is a pipelined shared buffer, what would
wide memory or PRIZMA interleaving cost instead, and where is the
standard-cell/full-custom break-even.

Run:  python examples/vlsi_cost_explorer.py
"""

from repro.switches.harness import format_table
from repro.vlsi import (
    Style,
    TELEGRAPHOS_III_TECH,
    pipelined_memory_area,
    pipelined_peripheral_area,
    prizma_crossbars,
    pipelined_crossbars,
    scaled,
    wide_peripheral_area,
)
from repro.vlsi.timing import (
    aggregate_buffer_throughput_gbps,
    clock_cycle_ns,
    link_throughput_gbps,
)


def size_sweep() -> None:
    tech = TELEGRAPHOS_III_TECH
    rows = []
    for n in (2, 4, 8, 16):
        depth, w, packets = 2 * n, 16, 256
        mem = pipelined_memory_area(tech, depth, packets, w)
        dp = pipelined_peripheral_area(tech, n, w, depth)
        rows.append([
            f"{n}x{n}",
            depth * packets * w // 1024,
            round(mem.total_mm2, 1),
            round(dp.area_mm2, 1),
            round(mem.total_mm2 + dp.area_mm2, 1),
            round(link_throughput_gbps(tech, w), 2),
            round(aggregate_buffer_throughput_gbps(tech, depth, w), 1),
        ])
    print(format_table(
        ["switch", "buffer Kbit", "memory mm^2", "peripheral mm^2",
         "total mm^2", "Gb/s per link", "aggregate Gb/s"],
        rows,
        title="Pipelined shared buffer vs switch size (1.0 um full custom, "
              "256-packet buffer)",
    ))
    print("note: peripheral area grows with the square of the links (§4.4);")
    print("beyond this point the paper recommends block-crosspoint buffering.\n")


def technology_sweep() -> None:
    rows = []
    for feature in (1.0, 0.7, 0.5, 0.35):
        for style in (Style.FULL_CUSTOM, Style.STANDARD_CELL):
            tech = scaled(TELEGRAPHOS_III_TECH, feature, style=style)
            dp = pipelined_peripheral_area(tech, 8, 16, 16)
            rows.append([
                f"{feature} um", style.value,
                round(dp.area_mm2, 1),
                round(clock_cycle_ns(tech), 1),
                round(link_throughput_gbps(tech, 16), 2),
            ])
    print(format_table(
        ["feature", "style", "peripheral mm^2", "clock ns", "Gb/s per link"],
        rows,
        title="8x8 switch peripheral across technologies",
    ))
    print()


def organization_comparison() -> None:
    tech = TELEGRAPHOS_III_TECH
    n, w, depth, packets = 8, 16, 16, 256
    pipe_dp = pipelined_peripheral_area(tech, n, w, depth)
    wide_dp = wide_peripheral_area(tech, n, w, depth)
    prizma = prizma_crossbars(tech, n, packets, w)
    pipe_xb = pipelined_crossbars(tech, n, w)
    rows = [
        ["pipelined memory", round(pipe_dp.area_mm2, 1), "none needed", "automatic"],
        ["wide memory", round(wide_dp.area_mm2, 1), "extra crossbar + buses",
         "needs dedicated paths"],
        ["PRIZMA interleaved",
         f"{prizma['total_area_mm2']:.0f} (crossbars alone; "
         f"{prizma['total_crosspoints'] // pipe_xb['total_crosspoints']}x pipelined)",
         "n x M router + selector", "per-bank"],
    ]
    print(format_table(
        ["organization", "peripheral/crossbar mm^2", "extra switching", "cut-through"],
        rows,
        title="Shared-buffer organizations at Telegraphos III parameters (§5)",
    ))


if __name__ == "__main__":
    size_sweep()
    technology_sweep()
    organization_comparison()
