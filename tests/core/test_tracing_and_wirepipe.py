"""Tests for the wave tracer and §4.3 wire pipelining."""

import pytest

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    TracePacketSource,
)
from repro.core.tracing import WaveTracer


def _traced_switch(schedule, n=2, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=8, **cfg_kwargs)
    src = TracePacketSource(n_out=n, packet_words=cfg.packet_words, schedule=schedule)
    return WaveTracer(PipelinedSwitch(cfg, src)), cfg


class TestWaveTracer:
    def test_records_cut_through_wave(self):
        tracer, cfg = _traced_switch({0: [(0, 1)]})
        tracer.run(cfg.depth * 3)
        inits = tracer.initiations()
        assert len(inits) == 1
        cycle, op, uid = inits[0]
        assert op == "CT" and cycle == 1  # earliest possible initiation

    def test_control_delay_property(self):
        """The figure-5 law, re-verified from the recorded trace."""
        tracer, cfg = _traced_switch({0: [(0, 1)], 1: [(1, 1)], })
        tracer.run(cfg.depth * 6)
        assert tracer.verify_control_delay_property()
        assert {op for _, op, _ in tracer.initiations()} == {"CT", "WR", "RD"}

    def test_random_traffic_trace_consistent(self):
        cfg = PipelinedSwitchConfig(n=4, addresses=64)
        src = RenewalPacketSource(n_out=4, packet_words=cfg.packet_words,
                                  load=0.6, seed=1)
        tracer = WaveTracer(PipelinedSwitch(cfg, src))
        tracer.run(600)
        assert tracer.verify_control_delay_property()
        # one initiation maximum per cycle
        cycles = [c for c, _, _ in tracer.initiations()]
        assert len(cycles) == len(set(cycles))

    def test_render_contains_ops_and_links(self):
        tracer, cfg = _traced_switch({0: [(0, 1)]})
        tracer.run(cfg.depth * 2)
        text = tracer.render()
        assert "CT" in text
        assert "L1<=w0" in text
        assert text.splitlines()[0].lstrip().startswith("cyc")

    def test_render_truncation(self):
        tracer, cfg = _traced_switch({0: [(0, 1)]})
        tracer.run(20)
        assert len(tracer.render(max_cycles=5).splitlines()) == 7  # 2 header rows

    def test_events_cut_through_diagonal(self):
        """The figure-5 staircase, asserted cell by cell: a lone WRITE_CT
        wave admitted at cycle t0 occupies bank k exactly at t0 + k."""
        tracer, cfg = _traced_switch({0: [(0, 1)]})
        tracer.run(cfg.depth * 3)
        ct = [(c, k) for c, k, op, uid in tracer.events() if op == "CT"]
        (t0, k0) = min(ct)
        assert k0 == 0
        assert sorted(ct) == [(t0 + k, k) for k in range(cfg.depth)]
        # and every cell belongs to the same packet
        uids = {uid for _, _, op, uid in tracer.events() if op == "CT"}
        assert len(uids) == 1

    def test_events_columns_and_kinds(self):
        tracer, cfg = _traced_switch({0: [(0, 1)], 1: [(1, 1)]})
        tracer.run(cfg.depth * 6)
        events = tracer.events()
        assert events, "trace captured no waves"
        for cycle, stage, op, uid in events:
            assert 0 <= stage < cfg.depth
            assert op in ("WR", "RD", "CT")
            assert cycle >= 0 and uid >= 0
        # events() and initiations() agree on stage-0 content
        inits = tracer.initiations()
        assert inits == [(c, op, u) for c, k, op, u in events if k == 0]

    def test_render_row_format(self):
        """One row per traced cycle; each wave cell renders as OP pUID@aADDR
        in the bank's column; the header names every bank."""
        tracer, cfg = _traced_switch({0: [(0, 1)]})
        tracer.run(cfg.depth * 2)
        lines = tracer.render().splitlines()
        header, rows = lines[0], lines[2:]
        for k in range(cfg.depth):
            assert f"M{k}" in header
        assert len(rows) == len(tracer.records)
        # the cut-through admission cycle shows the wave in the M0 column
        (t0, op, uid) = tracer.initiations()[0]
        row = next(r for r in rows if r.split()[0] == str(t0))
        m0_col = row[6:6 + 11]  # "cyc" prefix is 6 wide, each bank 11
        assert f"CT p{uid}@a" in m0_col


class TestWirePipelining:
    """§4.3: splitting the link wires adds constant latency, nothing else."""

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelinedSwitchConfig(n=2, link_pipeline_stages=-1)

    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_latency_shift_is_exactly_two_per_stage(self, stages):
        lats = []
        for s in (0, stages):
            cfg = PipelinedSwitchConfig(n=4, addresses=64, link_pipeline_stages=s)
            src = RenewalPacketSource(
                n_out=4, packet_words=cfg.packet_words, load=0.5, seed=2
            )
            sw = PipelinedSwitch(cfg, src)
            sw.warmup = 1000
            sw.run(20_000)
            sw.drain()
            lats.append(sw.ct_latency.mean)
        assert lats[1] - lats[0] == pytest.approx(2 * stages, abs=1e-9)

    def test_throughput_and_loss_unchanged(self):
        results = []
        for s in (0, 3):
            cfg = PipelinedSwitchConfig(n=4, addresses=64, link_pipeline_stages=s)
            src = RenewalPacketSource(
                n_out=4, packet_words=cfg.packet_words, load=0.7, seed=3
            )
            sw = PipelinedSwitch(cfg, src)
            sw.warmup = 1000
            sw.run(30_000)
            sw.drain()
            results.append((sw.link_utilization, sw.stats.dropped,
                            sw.stats.delivered))
        # identical packet outcomes up to warmup-boundary straddlers (the
        # pipelined wires shift a handful of departures across the warmup
        # edge); utilization only differs through drain-cycle denominators
        assert results[0][1] == results[1][1] == 0
        assert abs(results[0][2] - results[1][2]) <= 8
        assert results[0][0] == pytest.approx(results[1][0], rel=0.01)

    def test_data_integrity_preserved(self):
        cfg = PipelinedSwitchConfig(n=2, addresses=16, link_pipeline_stages=2)
        src = TracePacketSource(
            n_out=2, packet_words=cfg.packet_words,
            schedule={0: [(0, 1), (8, 0)], 1: [(2, 1)]},
        )
        sw = PipelinedSwitch(cfg, src)
        sw.run(200)  # payload checks run inside; reaching here is the test
        assert sw.stats.delivered == 3
