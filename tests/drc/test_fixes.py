"""``repro lint --fix``: mechanical repairs that must be idempotent."""

from pathlib import Path

from repro.drc import FIXABLE_CODES, apply_fixes, fix_source, run_lint


def test_fixable_codes_catalog():
    assert FIXABLE_CODES == {"DRC101", "DRC104"}


def test_drc104_wraps_set_iteration_in_sorted():
    src = (
        "def f(ports):\n"
        "    for p in set(ports):\n"
        "        yield p\n"
    )
    fixed, n = fix_source("src/repro/core/m.py", src)
    assert n == 1
    assert "for p in sorted(set(ports)):" in fixed


def test_drc104_nested_sites_compose():
    src = (
        "def f(a, b):\n"
        "    return [x for x in {y for y in set(b)}]\n"
    )
    fixed, n = fix_source("src/repro/core/m.py", src)
    # outer comprehension iterates a set comprehension whose generator
    # iterates a set() call: both sites are wrapped, innermost intact
    assert n == 2
    assert "sorted({y for y in sorted(set(b))})" in fixed


def test_drc101_trims_wall_clock_from_import():
    src = "from time import perf_counter, sleep\n"
    fixed, n = fix_source("src/repro/core/m.py", src)
    assert n == 1
    assert fixed == "from time import sleep\n"


def test_drc101_deletes_import_when_nothing_survives():
    src = (
        "from time import perf_counter\n"
        "CYCLES = 100\n"
    )
    fixed, n = fix_source("src/repro/core/m.py", src)
    assert n == 1
    assert fixed == "CYCLES = 100\n"


def test_suppressed_findings_are_left_alone():
    src = (
        "def f(ports):\n"
        "    for p in set(ports):  # drc: disable=DRC104\n"
        "        yield p\n"
    )
    fixed, n = fix_source("src/repro/core/m.py", src)
    assert n == 0
    assert fixed == src


def test_outside_deterministic_packages_untouched():
    src = "def f(s):\n    return [x for x in set(s)]\n"
    fixed, n = fix_source("src/repro/tools/m.py", src)
    assert n == 0
    assert fixed == src


def test_fix_twice_is_identity(tmp_path):
    files = {
        "src/repro/core/loops.py": (
            "from time import perf_counter, sleep\n"
            "def f(ports, links):\n"
            "    for p in set(ports) :\n"
            "        yield p\n"
            "    return {x for x in frozenset(links)}\n"
        ),
        "src/repro/switches/sel.py": (
            "def pick(active):\n"
            "    return [a for a in {0, 1, 2}]\n"
        ),
    }
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)

    first = apply_fixes(["src"], root=tmp_path)
    assert set(first) == {"src/repro/core/loops.py", "src/repro/switches/sel.py"}
    after_first = {rel: (tmp_path / rel).read_text() for rel in files}

    second = apply_fixes(["src"], root=tmp_path)
    assert second == {}, "second --fix pass must make zero edits"
    after_second = {rel: (tmp_path / rel).read_text() for rel in files}
    assert after_second == after_first

    # and the fixed tree lints clean of the fixable codes
    result = run_lint(["src"], root=tmp_path)
    assert [v for v in result.all_findings()
            if v.code in FIXABLE_CODES] == []
