"""Tests for output queueing and shared buffering."""

import pytest

from repro.analysis.queueing import output_queue_wait
from repro.switches import OutputQueued, SharedBuffer
from repro.traffic import BernoulliUniform, FixedPermutation, TraceSource


class TestOutputQueued:
    def test_work_conserving_full_throughput(self):
        sw = OutputQueued(8, 8, warmup=1000, seed=1)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=2), 15_000)
        assert stats.throughput == pytest.approx(1.0, abs=0.02)

    def test_mean_delay_matches_karol_formula(self):
        """[KaHM87]: W = ((n-1)/n) p / (2(1-p)) — the analytic anchor."""
        n, p = 8, 0.7
        sw = OutputQueued(n, n, warmup=2000, seed=3)
        stats = sw.run(BernoulliUniform(n, n, p, seed=4), 60_000)
        assert stats.mean_delay == pytest.approx(output_queue_wait(n, p), rel=0.08)

    def test_zero_delay_on_permutation(self):
        sw = OutputQueued(4, 4, seed=5)
        stats = sw.run(FixedPermutation([3, 2, 1, 0]), 200)
        assert stats.mean_delay == pytest.approx(0.0)

    def test_finite_buffer_loses_cells(self):
        sw = OutputQueued(8, 8, capacity=2, seed=6)
        stats = sw.run(BernoulliUniform(8, 8, 0.95, seed=7), 5000)
        assert stats.dropped > 0
        assert stats.accepted + stats.dropped == stats.offered

    def test_fifo_per_output(self):
        sw = OutputQueued(4, 4, seed=8)
        src = BernoulliUniform(4, 4, 0.9, seed=9)
        seen = []
        for t in range(1500):
            for cell in sw.step(src.arrivals(t)):
                if cell is not None and cell.dst == 1:
                    seen.append(cell.arrival_slot)
        assert seen == sorted(seen)


class TestSharedBuffer:
    def test_full_throughput(self):
        sw = SharedBuffer(8, 8, warmup=1000, seed=1)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=2), 15_000)
        assert stats.throughput == pytest.approx(1.0, abs=0.02)

    def test_infinite_capacity_never_drops(self):
        sw = SharedBuffer(4, 4, seed=3)
        stats = sw.run(BernoulliUniform(4, 4, 0.9, seed=4), 5000)
        assert stats.dropped == 0

    def test_sharing_beats_partitioned_output_queues(self):
        """Same total memory: the shared pool loses (far) fewer cells than
        n private output queues — the [HlKa88] effect, bench E3's core."""
        n, total = 8, 40
        src_a = BernoulliUniform(n, n, 0.9, seed=5)
        src_b = BernoulliUniform(n, n, 0.9, seed=5)
        shared = SharedBuffer(n, n, capacity=total, warmup=500, seed=6)
        private = OutputQueued(n, n, capacity=total // n, warmup=500, seed=6)
        loss_shared = shared.run(src_a, 30_000).loss_probability
        loss_private = private.run(src_b, 30_000).loss_probability
        assert loss_shared < loss_private / 3

    def test_drop_only_when_pool_full(self):
        # Capacity 1, two simultaneous arrivals to different outputs:
        # exactly one is admitted.
        sw = SharedBuffer(2, 2, capacity=1, seed=7)
        trace = TraceSource([[0, 1]], n_out=2)
        sw.run(trace, 2)
        assert sw.stats.accepted == 1
        assert sw.stats.dropped == 1

    def test_occupancy_bounded_by_capacity(self):
        sw = SharedBuffer(4, 4, capacity=10, seed=8)
        sw.sample_occupancy = True
        sw.run(BernoulliUniform(4, 4, 1.0, seed=9), 3000)
        assert max(sw.occupancy_samples) <= 10

    def test_equivalent_to_output_queueing_when_unlimited(self):
        """With infinite memory both architectures are work-conserving and
        deliver identical per-slot departure *counts* on the same trace."""
        from repro.traffic import record_trace

        n = 4
        trace = record_trace(BernoulliUniform(n, n, 0.8, seed=10), 800)
        a = SharedBuffer(n, n, seed=11)
        b = OutputQueued(n, n, seed=11)
        for t in range(800):
            da = a.step(list(trace[t]))
            db = b.step(list(trace[t]))
            assert [c is not None for c in da] == [c is not None for c in db]
