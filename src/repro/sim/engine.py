"""A minimal synchronous (cycle-driven) simulation kernel.

The paper's hardware is fully synchronous: one global clock, every register
updates on the clock edge.  We mirror that with a two-phase kernel:

* **evaluate** phase: every component computes its next state from the
  *current* outputs of the other components (combinational logic);
* **commit** phase: every component atomically adopts its next state
  (the clock edge).

Components register with an :class:`Engine` and are evaluated in the order
they were added; because evaluation may only read *committed* state of other
components, the order does not affect results — tests in
``tests/sim/test_engine.py`` verify this order-independence on a toy circuit.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Clocked(Protocol):
    """Anything that participates in the two-phase clock."""

    def evaluate(self, cycle: int) -> None:
        """Compute next state from currently-committed state."""

    def commit(self, cycle: int) -> None:
        """Adopt the next state (clock edge)."""


class Engine:
    """Synchronous simulation kernel driving a set of :class:`Clocked` parts."""

    def __init__(self) -> None:
        self._components: list[Clocked] = []
        self.cycle = 0

    def add(self, component: Clocked) -> Clocked:
        """Register a component; returns it for chaining."""
        if not isinstance(component, Clocked):
            raise TypeError(f"{component!r} does not implement evaluate/commit")
        self._components.append(component)
        return component

    def tick(self) -> None:
        """Advance the simulation by one clock cycle."""
        cycle = self.cycle
        for comp in self._components:
            comp.evaluate(cycle)
        for comp in self._components:
            comp.commit(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` clock cycles."""
        if cycles < 0:
            raise ValueError(f"cannot run a negative number of cycles: {cycles}")
        for _ in range(cycles):
            self.tick()


class Register:
    """A simple D-flip-flop holding one value; the canonical Clocked part.

    ``q`` is the committed (visible) output; assign to ``d`` during the
    evaluate phase.  If ``d`` is never assigned in a cycle the register holds
    its value (like a flip-flop with a load-enable that was not asserted).
    """

    _HOLD = object()

    def __init__(self, initial=None, name: str = "reg") -> None:
        self.name = name
        self.q = initial
        self._d = Register._HOLD

    @property
    def d(self):
        raise AttributeError("Register.d is write-only; read .q instead")

    @d.setter
    def d(self, value) -> None:
        self._d = value

    def evaluate(self, cycle: int) -> None:  # combinational inputs set .d externally
        pass

    def commit(self, cycle: int) -> None:
        if self._d is not Register._HOLD:
            self.q = self._d
            self._d = Register._HOLD

    def __repr__(self) -> str:
        return f"Register({self.name}={self.q!r})"


class ShiftPipeline:
    """A chain of registers: the control-signal delay line of paper figure 5.

    Stage 0's input is set each cycle via :meth:`push`; stage ``k`` sees the
    value pushed ``k`` cycles ago.  This is exactly how the pipelined memory
    derives the control of bank ``k`` from bank ``k-1``.
    """

    def __init__(self, depth: int, initial=None, name: str = "pipe") -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._stages: list = [initial] * depth
        self._incoming = initial
        self._initial = initial

    def push(self, value) -> None:
        """Set the value entering stage 0 at the next clock edge."""
        self._incoming = value

    def stage(self, k: int):
        """Committed value currently held at stage ``k``."""
        return self._stages[k]

    def evaluate(self, cycle: int) -> None:
        pass

    def commit(self, cycle: int) -> None:
        self._stages = [self._incoming] + self._stages[:-1]
        self._incoming = self._initial

    def __iter__(self):
        return iter(self._stages)

    def __repr__(self) -> str:
        return f"ShiftPipeline({self.name}, depth={self.depth})"
