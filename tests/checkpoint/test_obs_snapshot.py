"""Checkpoint/restore carries the observability plane bit-identically.

The sampled event log (rate + seed) and the series ring ride inside the
snapshot's telemetry document; a resumed run must produce the same sampled
stream, the same retained series rows, and the same fingerprint as an
uninterrupted one — across all three kernel tiers.
"""

import json

import pytest

from repro.checkpoint import fingerprint_doc, restore_switch, snapshot_switch
from repro.core import (
    BatchRenewalSource,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
    make_pipelined_switch,
)
from repro.obs.sampling import SampledEventLog
from repro.obs.series import SeriesRing
from repro.sim.packet import reset_packet_ids
from repro.telemetry import Telemetry


def _build(kernel, *, rate=0.3, seed=5, capacity=32):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=4, addresses=32)
    src = BatchRenewalSource(4, cfg.packet_words, load=0.8, seed=seed)
    tel = Telemetry.on(16, events=SampledEventLog(rate, seed=seed),
                       series=SeriesRing(capacity=capacity))
    if kernel == "checked":
        return PipelinedSwitch(cfg, src, telemetry=tel)
    if kernel == "fast":
        return FastPipelinedSwitch(cfg, src, telemetry=tel)
    return make_pipelined_switch(cfg, src, telemetry=tel, kernel="batch",
                                 batch_cycles=64)


@pytest.mark.parametrize("kernel", ["checked", "fast", "batch"])
@pytest.mark.parametrize("k", [1, 250, 499])
def test_resume_preserves_sampled_stream_and_series(kernel, k):
    ref = _build(kernel)
    ref.run(500)
    sw = _build(kernel)
    sw.run(k)
    doc = json.loads(json.dumps(snapshot_switch(sw)))
    resumed = restore_switch(doc)
    resumed.run(500 - k)

    assert fingerprint_doc(resumed) == fingerprint_doc(ref)
    rtel, ftel = resumed.telemetry, ref.telemetry
    assert rtel.events.sorted_events() == ftel.events.sorted_events()
    assert type(rtel.events) is SampledEventLog
    assert (rtel.events.rate, rtel.events.seed) == (0.3, 5)
    assert list(rtel.series.rows) == list(ftel.series.rows)
    assert rtel.series.recorded == ftel.series.recorded
    assert rtel.series.capacity == ftel.series.capacity
    assert rtel.series.to_jsonl() == ftel.series.to_jsonl()


def test_ring_eviction_state_survives_round_trip():
    """A ring that already evicted rows restores with the same retained
    window and the same total `recorded` count."""
    sw = _build("fast", capacity=4)
    sw.run(600)  # sample_interval 16 -> far more samples than capacity
    assert sw.telemetry.series.recorded > 4
    doc = json.loads(json.dumps(snapshot_switch(sw)))
    back = restore_switch(doc)
    assert list(back.telemetry.series.rows) == list(sw.telemetry.series.rows)
    assert back.telemetry.series.recorded == sw.telemetry.series.recorded


def test_wall_stamps_stay_out_of_fingerprints():
    """Wall-clock stamps round-trip (for live rate views) but must never
    enter the fingerprint, or resumed != uninterrupted."""
    sw = _build("fast")
    sw.run(300)
    fp = fingerprint_doc(sw)
    series_docs = [v for v in _walk_dicts(fp) if "walls" in v]
    assert not series_docs
    # but the snapshot itself does carry them
    snap = snapshot_switch(sw)
    assert any("walls" in v for v in _walk_dicts(snap))


def _walk_dicts(doc):
    if isinstance(doc, dict):
        yield doc
        for v in doc.values():
            yield from _walk_dicts(v)
    elif isinstance(doc, list):
        for v in doc:
            yield from _walk_dicts(v)
