"""Input queueing with internal fabric speedup [PaBr93] (paper §2.1, fig 1).

The switching fabric runs ``speedup`` matching phases per slot, so up to
``speedup`` cells can leave each input (and reach each output queue) per
slot, while links still carry one cell per slot.  "This is equivalent to
input queueing operating at a reduced input load."  Output queues are
required, and input buffers become three-ported — the costs the paper lists.

Bench E14 sweeps the speedup factor: speedup 1 reproduces the 0.586 HoL
limit; speedup 2 is already near 100 % throughput.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class SpeedupSwitch(SlottedSwitch):
    """FIFO input queues + speedup-phase fabric + output queues.

    Parameters
    ----------
    speedup:
        Fabric phases per slot (1 = plain FIFO input queueing + output stage).
    input_capacity / output_capacity:
        Queue capacities in cells (``None`` = infinite).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        speedup: int = 2,
        input_capacity: int | None = None,
        output_capacity: int | None = None,
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if speedup < 1:
            raise ValueError(f"speedup must be >= 1, got {speedup}")
        self.speedup = speedup
        self.input_capacity = input_capacity
        self.output_capacity = output_capacity
        self.in_queues: list[deque[Cell]] = [deque() for _ in range(n_in)]
        self.out_queues: list[deque[Cell]] = [deque() for _ in range(n_out)]
        self.rng = make_rng(seed)

    def _admit(self, cell: Cell) -> bool:
        q = self.in_queues[cell.src]
        if self.input_capacity is not None and len(q) >= self.input_capacity:
            return False
        q.append(cell)
        return True

    def _fabric_phase(self) -> None:
        """One HoL-arbitration pass moving winners to output queues."""
        contenders: dict[int, list[int]] = {}
        for i, q in enumerate(self.in_queues):
            if q:
                j = q[0].dst
                oq = self.out_queues[j]
                if self.output_capacity is not None and len(oq) >= self.output_capacity:
                    continue  # backpressure: output queue full, HoL cell waits
                contenders.setdefault(j, []).append(i)
        for j, inputs in contenders.items():
            winner = inputs[int(self.rng.integers(0, len(inputs)))]
            self.out_queues[j].append(self.in_queues[winner].popleft())

    def _select_departures(self) -> list[Cell | None]:
        for _ in range(self.speedup):
            self._fabric_phase()
        return [q.popleft() if q else None for q in self.out_queues]

    def occupancy(self) -> int:
        return sum(len(q) for q in self.in_queues) + sum(
            len(q) for q in self.out_queues
        )
