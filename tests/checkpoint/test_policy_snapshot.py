"""Checkpoint/restore of the admission-policy plane.

The snapshot format carries the policy as its canonical spec string plus
a ``policy_state`` hook (format v2); resume must be bit-identical under
every policy on every kernel, version-1 documents (written before the
policy layer existed) must restore exactly as complete sharing, and a
stateless policy handed leftover state must refuse loudly.
"""

import json

import pytest

from repro.checkpoint import (
    SNAPSHOT_VERSION,
    fingerprint,
    restore_switch,
    snapshot_switch,
)
from repro.core import (
    BatchPipelinedSwitch,
    BatchRenewalSource,
    FastPipelinedSwitch,
    PipelinedSwitch,
    PipelinedSwitchConfig,
)
from repro.core.errors import ConfigError
from repro.sim.packet import reset_packet_ids

KERNELS = {
    "checked": PipelinedSwitch,
    "fast": FastPipelinedSwitch,
    "batch": BatchPipelinedSwitch,
}


def _build(kernel, policy, seed=11):
    reset_packet_ids()
    cfg = PipelinedSwitchConfig(n=4, addresses=16, policy=policy)
    src = BatchRenewalSource(4, cfg.packet_words, load=0.9, seed=seed)
    return KERNELS[kernel](cfg, src)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("policy", ["complete", "dynamic:alpha=0.75",
                                    "reservation:reserve=2"])
def test_resume_bit_identical_under_policy(kernel, policy):
    ref = _build(kernel, policy)
    ref.run(3000)
    ref.drain()
    want = fingerprint(ref)

    sw = _build(kernel, policy)
    sw.run(1100)
    doc = json.loads(json.dumps(snapshot_switch(sw)))  # real JSON round trip
    assert doc["version"] == SNAPSHOT_VERSION
    assert doc["config"]["policy"] == policy
    sw2 = restore_switch(doc)
    assert sw2.policy.spec == sw.policy.spec
    sw2.run(3000 - 1100)
    sw2.drain()
    assert fingerprint(sw2) == want


def test_policy_drops_counter_round_trips():
    sw = _build("fast", "static:cap=2")
    sw.run(2500)
    assert sw.policy_drops > 0
    doc = snapshot_switch(sw)
    sw2 = restore_switch(doc)
    assert sw2.policy_drops == sw.policy_drops


def test_v1_document_restores_as_complete_sharing():
    """A pre-policy (version 1) snapshot has no policy spec, no
    policy_state, and six-element wave counters; it must restore exactly
    as the seed semantics: complete sharing, zero policy drops."""
    sw = _build("fast", "complete")
    sw.run(800)
    doc = json.loads(json.dumps(snapshot_switch(sw)))
    doc["version"] = 1
    del doc["config"]["policy"]
    del doc["policy_state"]
    doc["switch"]["waves"] = doc["switch"]["waves"][:6]
    doc["switch"].pop("peak", None)
    sw2 = restore_switch(doc)
    assert sw2.policy.spec == "complete"
    assert sw2.policy_drops == 0
    # and it keeps running from the restored point
    sw2.run(100)


def test_stateless_policy_refuses_leftover_state():
    sw = _build("checked", "dynamic:alpha=1.0")
    sw.run(200)
    doc = snapshot_switch(sw)
    assert doc["policy_state"] is None
    doc["policy_state"] = {"ema": 3}
    with pytest.raises(ConfigError, match="stateless"):
        restore_switch(doc)
