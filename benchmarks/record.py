"""Record checked-model vs fast-kernel timings into BENCH_fastpath.json.

Runs the E15-shaped functional workloads and the E13-shaped pipelined
operating points with both kernels, asserts that every statistic is
bit-identical, and writes per-experiment wall time, cycles/sec, and speedup.

The timed runs keep telemetry at its default (off) so the recorded numbers
track the kernels themselves; a separate short telemetry-on pass per
experiment checks that the two kernels' event streams, metric registries
and occupancy-vs-cycle samples are identical, and its summary is stored
under each result's ``telemetry`` key.

Usage::

    PYTHONPATH=src python benchmarks/record.py          # full horizons
    PYTHONPATH=src python benchmarks/record.py --smoke  # ~30 s CI smoke run
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.scenario import Scenario, prepare
from repro.telemetry import Telemetry

OUT_PATH = Path(__file__).parent / "BENCH_fastpath.json"

TELEMETRY_SAMPLE_INTERVAL = 64


def _fingerprint(sw) -> dict:
    """Everything the two kernels must agree on, bit for bit."""
    return {
        "stats": sw.stats,
        "ct_latency": sw.ct_latency,
        "ct_latency_hist": sw.ct_latency_hist,
        "total_latency": sw.total_latency,
        "stagger_extra": sw.stagger_extra,
        "cut_through_waves": sw.cut_through_waves,
        "plain_read_waves": sw.plain_read_waves,
        "write_waves": sw.write_waves,
        "idle_cycles": sw.idle_cycles,
        "deadline_overrides": sw.deadline_overrides,
        "overrun_drops": sw.overrun_drops,
        "cycle": sw.cycle,
    }


def _run(scenario: Scenario, fast: bool, telemetry: Telemetry | None = None):
    """Build one kernel through the scenario registry, run it, time it."""
    sc = dataclasses.replace(scenario,
                             arch="pipelined_fast" if fast else "pipelined")
    sw = prepare(sc, telemetry=telemetry).switch
    t0 = time.perf_counter()
    sw.run(sc.horizon)
    if sc.drain:
        sw.drain()
    elapsed = time.perf_counter() - t0
    return sw, elapsed


def _telemetry_pass(scenario: Scenario, cycles: int) -> dict:
    """Short telemetry-on run of both kernels; assert stream equivalence and
    return the occupancy-vs-cycle summary for the record."""
    short = dataclasses.replace(scenario, horizon=cycles)
    tel_slow = Telemetry.on(sample_interval=TELEMETRY_SAMPLE_INTERVAL)
    tel_fast = Telemetry.on(sample_interval=TELEMETRY_SAMPLE_INTERVAL)
    _run(short, fast=False, telemetry=tel_slow)
    _run(short, fast=True, telemetry=tel_fast)
    assert tel_slow.events.sorted_events() == tel_fast.events.sorted_events(), \
        "checked/fast event streams diverge"
    assert tel_slow.events.drop_taxonomy() == tel_fast.events.drop_taxonomy()
    assert tel_slow.samples == tel_fast.samples, "occupancy samples diverge"
    assert tel_slow.metrics.as_dict() == tel_fast.metrics.as_dict()
    return {
        "events": len(tel_slow.events),
        "drop_taxonomy": tel_slow.events.drop_taxonomy(),
        "occupancy": tel_slow.occupancy_series(),
        "equivalent": True,
    }


def _experiments(scale: int) -> list[Scenario]:
    """One Scenario per workload (arch is swapped per kernel by ``_run``).

    ``warmup=0`` everywhere: these fingerprints predate the scenario layer
    and its horizon//5 default, and must stay bit-identical to the seed
    BENCH_fastpath.json numbers.
    """
    e13_params = {"n": 8, "addresses": 256, "credit_flow": True}
    b = 2 * e13_params["n"]  # packet_words = depth (= 2n) * quanta
    e13_cycles = (20_000 * b // 2) // scale

    def sc(name, params, traffic, cycles, drain, seed):
        return Scenario(name=name, arch="pipelined", horizon=cycles,
                        params=params, traffic=traffic, seeds=[seed],
                        warmup=0, drain=drain)

    return [
        sc("E15 8x8 load 0.6 drop-tail", {"n": 8, "addresses": 128},
           {"kind": "renewal", "load": 0.6}, 150_000 // scale, True, 1),
        sc("E15 8x8 saturated credits",
           {"n": 8, "addresses": 64, "credit_flow": True},
           {"kind": "saturating", "load": 1.0}, 150_000 // scale, False, 2),
        sc("E15 4x4 saturated tiny buffer", {"n": 4, "addresses": 8},
           {"kind": "saturating", "load": 1.0}, 100_000 // scale, True, 3),
        sc("E13 pipelined saturation point", e13_params,
           {"kind": "renewal", "load": 1.0}, e13_cycles, False, 2),
        sc("E13 pipelined latency point", e13_params,
           {"kind": "renewal", "load": 0.8}, e13_cycles, False, 3),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="scale horizons down ~20x for a quick CI check")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    scale = 20 if args.smoke else 1

    results = []
    for scenario in _experiments(scale):
        name, cycles = scenario.name, scenario.horizon
        slow, t_slow = _run(scenario, fast=False)
        fast, t_fast = _run(scenario, fast=True)
        for _ in range(2):
            # the fast kernel finishes in ~1 s, so its wall time is at the
            # mercy of scheduling noise; keep the cleanest of three runs
            _, t_retry = _run(scenario, fast=True)
            t_fast = min(t_fast, t_retry)
        fp_slow, fp_fast = _fingerprint(slow), _fingerprint(fast)
        for key, want in fp_slow.items():
            got = fp_fast[key]
            assert got == want, f"{name}: {key} mismatch\n  checked={want}\n  fast={got}"
        total_cycles = fp_slow["cycle"]  # includes drain cycles
        telemetry = _telemetry_pass(scenario, max(cycles // 10, 1000))
        results.append({
            "experiment": name,
            "cycles": total_cycles,
            "checked_seconds": round(t_slow, 4),
            "fast_seconds": round(t_fast, 4),
            "checked_cycles_per_sec": round(total_cycles / t_slow),
            "fast_cycles_per_sec": round(total_cycles / t_fast),
            "speedup": round(t_slow / t_fast, 2),
            "delivered": fp_slow["stats"].delivered,
            "dropped": fp_slow["stats"].dropped,
            "identical": True,
            "telemetry": telemetry,
        })
        print(f"{name:34s} {t_slow:7.2f}s -> {t_fast:6.2f}s "
              f"({results[-1]['speedup']:.1f}x), stats identical, "
              f"telemetry equivalent ({telemetry['events']} events)")

    payload = {
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    slowest = min(r["speedup"] for r in results)
    print(f"minimum speedup across workloads: {slowest:.1f}x")
    if not args.smoke and slowest < 5.0:
        print("WARNING: below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
