"""Lint driver: file discovery, suppression handling, output formats.

``run_lint(paths)`` parses every ``.py`` file under the given paths into
:class:`~repro.drc.rules.LintModule`\\ s, runs the whole rule catalog
(per-module rules file by file, project rules over the collection), drops
findings suppressed with a ``# drc: disable=<code>`` comment on the
offending line, and returns the surviving violations sorted by path/line.

Suppression syntax (mirrors the familiar lint tools):

* ``x = foo()  # drc: disable=DRC104`` — silence one code on this line;
* ``# drc: disable=DRC101,DRC104`` — several codes, comma-separated;
* ``# drc: disable`` — every rule on this line (use sparingly; prefer
  naming the code so the exception is auditable).

Output formats: ``text`` (one ``path:line:col: CODE message`` per line),
``json`` (a list of violation objects plus a summary), and ``sarif``
(SARIF 2.1.0, for code-scanning upload from CI).
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.drc.rules import LintModule, Violation, rule_catalog

#: directories never descended into during file discovery
_SKIP_DIRS = frozenset({
    ".git", ".hg", "__pycache__", ".venv", "venv", "node_modules",
    ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist",
})

_SUPPRESS_RE = re.compile(r"#\s*drc:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?")


def discover_files(paths: Iterable[str | Path], root: Path | None = None) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files taken as-is), sorted."""
    root = Path.cwd() if root is None else root
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            if p.suffix == ".py":
                out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
    return sorted(out)


def parse_suppressions(source: str) -> dict[int, set[str] | None]:
    """line (1-based) -> suppressed codes; ``None`` means all codes."""
    out: dict[int, set[str] | None] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            out[i] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _suppressed(v: Violation, suppressions: dict[int, set[str] | None]) -> bool:
    codes = suppressions.get(v.line, ...)
    if codes is ...:
        return False
    return codes is None or v.code in codes  # type: ignore[union-attr]


class LintResult:
    """Violations that survived suppression, plus run accounting."""

    def __init__(self, violations: list[Violation], files_checked: int,
                 suppressed: int, parse_errors: list[Violation]) -> None:
        self.violations = violations
        self.files_checked = files_checked
        self.suppressed = suppressed
        self.parse_errors = parse_errors

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.parse_errors else 0

    def all_findings(self) -> list[Violation]:
        return sorted(self.parse_errors + self.violations,
                      key=lambda v: (v.path, v.line, v.col, v.code))


def run_lint(paths: Iterable[str | Path], root: Path | None = None) -> LintResult:
    """Lint every Python file under ``paths``; see module docstring."""
    root = Path.cwd() if root is None else root
    files = discover_files(paths, root=root)
    mods: list[LintModule] = []
    suppressions: dict[str, dict[int, set[str] | None]] = {}
    parse_errors: list[Violation] = []
    for f in files:
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        try:
            source = f.read_text(encoding="utf-8")
            mod = LintModule.parse(f, rel, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            parse_errors.append(Violation(
                "DRC001", rel, line, 1, f"file could not be parsed: {exc}"
            ))
            continue
        mods.append(mod)
        suppressions[rel] = parse_suppressions(source)

    raw: list[Violation] = []
    for rule in rule_catalog():
        for mod in mods:
            raw.extend(rule.check_module(mod))
        raw.extend(rule.check_project(mods))

    kept: list[Violation] = []
    n_suppressed = 0
    for v in raw:
        if _suppressed(v, suppressions.get(v.path, {})):
            n_suppressed += 1
        else:
            kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(kept, files_checked=len(files),
                      suppressed=n_suppressed, parse_errors=parse_errors)


# -- output formats ---------------------------------------------------------

def format_text(result: LintResult) -> str:
    lines = [v.render() for v in result.all_findings()]
    n = len(result.all_findings())
    lines.append(
        f"{'No' if n == 0 else n} violation{'s' if n != 1 else ''} "
        f"in {result.files_checked} file{'s' if result.files_checked != 1 else ''}"
        + (f" ({result.suppressed} suppressed)" if result.suppressed else "")
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(
        {
            "violations": [asdict(v) for v in result.all_findings()],
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
        },
        indent=2,
    )


def format_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 — the schema GitHub code scanning ingests."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for rule in rule_catalog()
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {"startLine": v.line, "startColumn": v.col},
                    }
                }
            ],
        }
        for v in result.all_findings()
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-drc",
                        "informationUri": "https://example.invalid/repro-drc",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


FORMATTERS = {"text": format_text, "json": format_json, "sarif": format_sarif}
