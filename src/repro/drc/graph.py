"""Whole-program symbol/import graph and class-hierarchy resolver.

The per-file rules in :mod:`repro.drc.rules` need only one parsed module;
the project rules (registry coverage, API shape, RNG provenance,
checkpoint completeness, numba compatibility) need to answer questions
that span files:

* *what does the name ``sw.PipelinedSwitch`` in this module refer to?* —
  import/alias resolution, including relative imports and re-export
  chasing through package ``__init__`` hubs;
* *which classes derive (transitively) from ``SlottedSwitch``?* — exact
  class-hierarchy edges built from resolved base names, replacing the
  old leaf-name matching heuristics;
* *which function does this call land in?* — enough call resolution for
  the dataflow engine (:mod:`repro.drc.dataflow`) to build
  interprocedural summaries.

:class:`ProjectGraph` is built once per lint invocation from the parsed
:class:`~repro.drc.rules.LintModule` collection and shared by every
project rule through :class:`~repro.drc.rules.Project`.

Naming: a *module qname* is the dotted import path (``repro.core.switch``,
derived from the relative file path with a leading ``src/`` stripped and
``__init__`` folded into the package); a *symbol qname* appends the
symbol path (``repro.core.switch.PipelinedSwitch``).  :meth:`canonical`
maps any qname onto the defining location, so two modules importing the
same class through different hubs agree on one name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.drc.rules import LintModule, _dotted

#: re-export chains longer than this are cut (defensive; real hubs are 1-2)
_MAX_CHASE = 16


@dataclass
class ClassInfo:
    """One class definition plus its resolved project base classes."""

    qname: str
    name: str
    module: LintModule
    node: ast.ClassDef
    base_refs: tuple[str, ...]  # raw dotted base names as written
    bases: tuple[str, ...] = ()  # resolved project class qnames

    @property
    def package(self) -> str | None:
        return self.module.package


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    name: str
    module: LintModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: str | None = None  # class qname for methods

    def decorator_names(self) -> list[str]:
        """Dotted names of the decorators (``Call`` wrappers unwrapped)."""
        out: list[str] = []
        for dec in self.node.decorator_list:
            expr: ast.expr = dec
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = _dotted(expr)
            if name is not None:
                out.append(name)
        return out


def module_qname(relpath: str) -> str:
    """Dotted import path for a file path relative to the lint root."""
    parts = list(PurePosixPath(relpath).with_suffix("").parts)
    while parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class _ModuleFacts:
    mod: LintModule
    qname: str
    is_package: bool
    env: dict[str, str] = field(default_factory=dict)  # local name -> qname
    defs: set[str] = field(default_factory=set)  # top-level bound names


def _iter_module_level(tree: ast.Module) -> list[ast.stmt]:
    """Statements at module level, descending into if/try blocks but not
    into function bodies (conditional-import idioms stay visible)."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(stmt, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
    return out


def imports_in(stmts: list[ast.stmt], qname: str, is_package: bool) -> dict[str, str]:
    """Alias environment from ``import``/``from`` statements in ``stmts``.

    Maps each locally bound name to the dotted qname it refers to;
    relative imports are resolved against ``qname``/``is_package``.
    """
    env: dict[str, str] = {}
    for stmt in stmts:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    env[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    env[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            base = _from_base(stmt, qname, is_package)
            if base is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                env[local] = f"{base}.{alias.name}" if base else alias.name
    return env


def _from_base(stmt: ast.ImportFrom, qname: str, is_package: bool) -> str | None:
    if stmt.level == 0:
        return stmt.module or ""
    parts = qname.split(".") if qname else []
    if not is_package:
        parts = parts[:-1]
    drop = stmt.level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[: len(parts) - drop]
    if stmt.module:
        parts = parts + stmt.module.split(".")
    return ".".join(parts)


class ProjectGraph:
    """Symbol, import, and class-hierarchy graph over a lint invocation."""

    def __init__(self, mods: list[LintModule]) -> None:
        self.modules: dict[str, LintModule] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._facts: dict[str, _ModuleFacts] = {}
        self._children: dict[str, set[str]] | None = None
        self._methods_cache: dict[str, dict[str, FunctionInfo]] = {}
        for mod in mods:
            qname = module_qname(mod.relpath)
            if not qname:
                continue
            is_package = PurePosixPath(mod.relpath).name == "__init__.py"
            facts = _ModuleFacts(mod=mod, qname=qname, is_package=is_package)
            level = _iter_module_level(mod.tree)
            facts.env = imports_in(level, qname, is_package)
            for stmt in level:
                for name in _bound_names(stmt):
                    facts.defs.add(name)
            self.modules[qname] = mod
            self._facts[qname] = facts
            self._collect_defs(facts)
        self._resolve_bases()

    # -- construction ------------------------------------------------------

    def _collect_defs(self, facts: _ModuleFacts) -> None:
        def visit(body: list[ast.stmt], prefix: str, owner: str | None) -> None:
            for stmt in body:
                if isinstance(stmt, ast.ClassDef):
                    qname = f"{prefix}.{stmt.name}"
                    refs = tuple(r for r in (_dotted(b) for b in stmt.bases)
                                 if r is not None)
                    self.classes[qname] = ClassInfo(
                        qname=qname, name=stmt.name, module=facts.mod,
                        node=stmt, base_refs=refs,
                    )
                    visit(stmt.body, qname, qname)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{prefix}.{stmt.name}"
                    self.functions[qname] = FunctionInfo(
                        qname=qname, name=stmt.name, module=facts.mod,
                        node=stmt, owner=owner,
                    )
                    # nested defs are intraprocedural detail, not symbols
                elif isinstance(stmt, (ast.If, ast.Try)):
                    for child in ast.iter_child_nodes(stmt):
                        if isinstance(child, ast.stmt):
                            visit([child], prefix, owner)

        visit(facts.mod.tree.body, facts.qname, None)

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            modq = module_qname(info.module.relpath)
            resolved: list[str] = []
            for ref in info.base_refs:
                qname = self.resolve(modq, ref)
                if qname in self.classes:
                    resolved.append(qname)
            info.bases = tuple(resolved)

    # -- name resolution ---------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str:
        """Canonical qname for ``dotted`` as written inside ``module``.

        Unresolvable names (builtins, external packages) come back
        unchanged, so callers can still prefix-match ``numpy.`` etc.
        """
        facts = self._facts.get(module)
        if facts is None:
            return self.canonical(dotted)
        head, _, rest = dotted.partition(".")
        if head in facts.env:
            target = facts.env[head] + (f".{rest}" if rest else "")
        elif head in facts.defs:
            target = f"{module}.{dotted}"
        else:
            return self.canonical(dotted)
        return self.canonical(target)

    def canonical(self, qname: str, _depth: int = 0) -> str:
        """Chase re-export hubs so a symbol has one defining qname."""
        if _depth > _MAX_CHASE:
            return qname
        parts = qname.split(".")
        for i in range(len(parts), 0, -1):
            modq = ".".join(parts[:i])
            facts = self._facts.get(modq)
            if facts is None:
                continue
            rest = parts[i:]
            if not rest:
                return modq
            head = rest[0]
            if head in facts.env and head not in facts.defs:
                chased = ".".join([facts.env[head], *rest[1:]])
                return self.canonical(chased, _depth + 1)
            return ".".join([modq, *rest])
        return qname

    def resolve_node(self, mod: LintModule, node: ast.expr,
                     local_env: dict[str, str] | None = None) -> str | None:
        """Canonical qname for a Name/Attribute expression, or None."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        modq = module_qname(mod.relpath)
        if local_env:
            head, _, rest = dotted.partition(".")
            if head in local_env:
                target = local_env[head] + (f".{rest}" if rest else "")
                return self.canonical(target)
        return self.resolve(modq, dotted)

    def function_at(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def module_deps(self, mod: LintModule) -> set[str]:
        """Project modules this file imports (for cache invalidation)."""
        modq = module_qname(mod.relpath)
        facts = self._facts.get(modq)
        if facts is None:
            return set()
        deps: set[str] = set()
        for target in facts.env.values():
            parts = target.split(".")
            for i in range(len(parts), 0, -1):
                prefix = ".".join(parts[:i])
                if prefix in self.modules:
                    deps.add(prefix)
                    break
        deps.discard(modq)
        return deps

    # -- class hierarchy ---------------------------------------------------

    def _child_edges(self) -> dict[str, set[str]]:
        if self._children is None:
            self._children = {}
            for info in self.classes.values():
                for base in info.bases:
                    self._children.setdefault(base, set()).add(info.qname)
        return self._children

    def subclasses_of(self, qname: str, *, strict: bool = False) -> set[str]:
        """Transitive subclass qnames; include ``qname`` unless strict."""
        edges = self._child_edges()
        out: set[str] = set()
        stack = [qname]
        while stack:
            cur = stack.pop()
            for child in edges.get(cur, ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        if not strict:
            out.add(qname)
        return out

    def mro(self, qname: str) -> list[ClassInfo]:
        """The class plus its project bases, nearest first (linearized
        breadth-first; good enough for method lookup in this codebase)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        queue = [qname]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out

    def methods_of(self, qname: str) -> dict[str, FunctionInfo]:
        """name -> defining FunctionInfo along the project MRO."""
        cached = self._methods_cache.get(qname)
        if cached is not None:
            return cached
        methods: dict[str, FunctionInfo] = {}
        for info in self.mro(qname):
            for stmt in info.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.setdefault(
                        stmt.name, self.functions[f"{info.qname}.{stmt.name}"]
                    )
        self._methods_cache[qname] = methods
        return methods

    def classes_named(self, name: str, *, package: str | None = None,
                      in_src: bool = True) -> list[ClassInfo]:
        """Every class with this bare name (optionally package-filtered)."""
        out = [
            info for info in self.classes.values()
            if info.name == name
            and (not in_src or info.module.in_src)
            and (package is None or info.module.package == package)
        ]
        out.sort(key=lambda c: c.qname)
        return out


def _bound_names(stmt: ast.stmt) -> list[str]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [stmt.name]
    out: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for t in targets:
        for node in ast.walk(t):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                out.append(node.id)
    return out
