"""The /metrics endpoint and sweep aggregation, driven like a scraper would.

These tests run real sweeps through ScenarioRunner with the observer
attached and scrape over actual HTTP (loopback, ephemeral ports), because
the aggregation bugs worth catching — duplicate TYPE lines, worker
registries missing, resume double-counting — only appear on the wire.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import promparse
from repro.obs.server import MetricsServer, serve_run_metrics
from repro.scenario import Scenario, ScenarioRunner


def _scenarios(seeds=(1, 2), horizon=3000):
    return [Scenario(
        name="obs-sweep", arch="pipelined_fast", horizon=horizon,
        params={"n": 4, "addresses": 64},
        traffic={"kind": "renewal", "load": 0.7},
        seeds=list(seeds),
        telemetry={"metrics": True, "sample_interval": 64, "series": 128},
    )]


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as resp:
        assert resp.headers["Content-Type"].startswith("text/plain")
        return resp.read().decode()


class TestMetricsServer:
    def test_serves_parseable_merged_document(self):
        with MetricsServer(0) as server:
            server.add_provider(lambda: "# TYPE a gauge\na 1\n")
            server.add_provider(lambda: "# TYPE b_total counter\nb_total 2\n")
            fams = promparse.parse(_scrape(server.url))
            assert [f.name for f in fams] == ["a", "b_total"]

    def test_unknown_path_404(self):
        with MetricsServer(0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(server.url.replace("/metrics", "/nope"))
            assert err.value.code == 404

    def test_broken_provider_drops_out_not_down(self):
        with MetricsServer(0) as server:
            server.add_provider(lambda: "# TYPE a gauge\na 1\n")
            server.add_provider(lambda: "not { valid")
            fams = promparse.parse(_scrape(server.url))
            assert [f.name for f in fams] == ["a"]


class TestSweepAggregation:
    def test_progress_and_cells_after_sweep(self, tmp_path):
        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        try:
            runner = ScenarioRunner(jobs=1, out_dir=tmp_path, observer=obs)
            runner.run(_scenarios())
            fams = {f.name: f for f in promparse.parse(_scrape(server.url))}
            assert fams["repro_sweep_cells_total"].samples[0].value == 2
            assert fams["repro_sweep_cells_done"].samples[0].value == 2
            assert fams["repro_sweep_cells_inflight"].samples[0].value == 0
            cells = {s.labels["cell"]
                     for s in fams["repro_buffer_occupancy"].samples}
            assert cells == {"obs-sweep-seed1", "obs-sweep-seed2"}
        finally:
            server.stop()

    def test_results_identical_with_and_without_endpoint_any_jobs(
            self, tmp_path):
        """Observability must not perturb the simulation: merged results are
        bit-identical with the endpoint on or off, at any --jobs."""
        outcomes = []
        for jobs, serve in ((1, False), (1, True), (2, True)):
            out = tmp_path / f"j{jobs}-{serve}"
            server = obs = None
            if serve:
                server, obs = serve_run_metrics(0, out_dir=out)
            try:
                ScenarioRunner(jobs=jobs, out_dir=out,
                               observer=obs).run(_scenarios())
            finally:
                if server is not None:
                    server.stop()
            outcomes.append((out / "results.json").read_text())
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_worker_process_registries_arrive_via_artifacts(self, tmp_path):
        """--jobs 2 runs cells in pool workers whose registries the server
        process never sees live; they must still show up per cell."""
        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        try:
            ScenarioRunner(jobs=2, out_dir=tmp_path,
                           observer=obs).run(_scenarios())
            fams = {f.name: f for f in promparse.parse(_scrape(server.url))}
            cells = {s.labels["cell"]
                     for s in fams["repro_buffer_occupancy"].samples}
            assert cells == {"obs-sweep-seed1", "obs-sweep-seed2"}
        finally:
            server.stop()

    def test_resumed_sweep_counts_reloaded_cells(self, tmp_path):
        first = ScenarioRunner(jobs=1, out_dir=tmp_path)
        first.run(_scenarios(seeds=(1,)))
        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        try:
            runner = ScenarioRunner(jobs=1, out_dir=tmp_path, resume=True,
                                    observer=obs)
            results = runner.run(_scenarios(seeds=(1, 2, 3)))
            assert len(results) == 3
            fams = {f.name: f for f in promparse.parse(_scrape(server.url))}
            assert fams["repro_sweep_cells_total"].samples[0].value == 3
            assert fams["repro_sweep_cells_resumed"].samples[0].value == 1
            assert fams["repro_sweep_cells_done"].samples[0].value == 3
        finally:
            server.stop()

    def test_live_registry_visible_mid_run(self, tmp_path):
        """At --jobs 1 the in-process cell's registry is scraped live;
        job_live exposes it while the cell executes."""
        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        seen: list[dict] = []

        class Probe:
            """Wraps the real observer, scraping while a cell is live."""

            def __getattr__(self, name):
                return getattr(obs, name)

            def job_live(self, name, seed, telemetry):
                obs.job_live(name, seed, telemetry)
                if telemetry is not None:
                    seen.append(obs.progress())
                    fams = {f.name: f
                            for f in promparse.parse(_scrape(server.url))}
                    cells = {s.labels.get("cell") for f in fams.values()
                             for s in f.samples if "cell" in s.labels}
                    seen.append(sorted(cells))

        try:
            ScenarioRunner(jobs=1, out_dir=tmp_path,
                           observer=Probe()).run(_scenarios(seeds=(1,)))
        finally:
            server.stop()
        assert seen[0]["inflight"] == 1
        assert "obs-sweep-seed1" in seen[1]


class TestTopDashboard:
    def test_once_against_live_server(self, tmp_path, capsys):
        import io

        from repro.obs.top import run_top

        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        try:
            ScenarioRunner(jobs=1, out_dir=tmp_path,
                           observer=obs).run(_scenarios(seeds=(1,)))
            out = io.StringIO()
            assert run_top(server.url, once=True, out=out) == 0
            text = out.getvalue()
            assert "1/1 cells" in text
            assert "obs-sweep-seed1" in text
            assert "drop taxonomy" in text
            assert "\x1b[" not in text  # --once never clears the screen
        finally:
            server.stop()

    def test_peak_occupancy_column(self):
        """The dashboard surfaces the repro_buffer_peak_occupancy gauge
        as its own column, from canned families (no server needed)."""
        from repro.obs.promparse import parse
        from repro.obs.top import _Snapshot, render_dashboard

        families = parse(
            "# TYPE repro_cycle gauge\n"
            "repro_cycle 500\n"
            "# TYPE repro_buffer_occupancy gauge\n"
            "repro_buffer_occupancy 7\n"
            "# TYPE repro_buffer_peak_occupancy gauge\n"
            "repro_buffer_peak_occupancy 13\n"
        )
        text = render_dashboard(_Snapshot(families, 0.0), None)
        header = next(l for l in text.splitlines() if "cycles/s" in l)
        assert "peak" in header
        row = next(l for l in text.splitlines() if "(run)" in l)
        assert "13" in row and "7" in row

    def test_rates_appear_on_second_scrape(self, tmp_path):
        import io

        from repro.obs.top import run_top

        server, obs = serve_run_metrics(0, out_dir=tmp_path)
        try:
            ScenarioRunner(jobs=1, out_dir=tmp_path,
                           observer=obs).run(_scenarios(seeds=(1,)))
            out = io.StringIO()
            assert run_top(server.url, interval=0.01, iterations=2,
                           out=out) == 0
            # first refresh has no deltas ('-'), second derives rates
            refreshes = out.getvalue().count("cycles/s")
            assert refreshes == 2
        finally:
            server.stop()

    def test_unreachable_endpoint_exits_nonzero(self, capsys):
        from repro.obs.top import run_top

        assert run_top("http://127.0.0.1:9/metrics", once=True) == 1
        assert "cannot scrape" in capsys.readouterr().err


def test_cli_sweep_serve_metrics_smoke(tmp_path):
    """`repro run --serve-metrics 0` end to end through the CLI entry."""
    from repro.cli import main

    spec = _scenarios(seeds=(1,))[0].to_dict()
    path = tmp_path / "sc.json"
    path.write_text(json.dumps(spec))
    rc = main(["run", str(path), "--out", str(tmp_path / "out"),
               "--serve-metrics", "0"])
    assert rc == 0
    assert (tmp_path / "out" / "results.json").exists()
