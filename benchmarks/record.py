"""Record checked/fast/batch kernel timings into BENCH_fastpath.json.

Runs the E15-shaped functional workloads and the E13-shaped pipelined
operating points with the checked model and the wave-level fast kernel,
asserts that every statistic is bit-identical, and writes per-experiment
wall time, cycles/sec, and speedup.  Workloads the batch kernel supports
(drop-tail, tape-consumable traffic) are additionally run three-way — the
arrival tape is replayed through all three kernels and the batch kernel's
statistics must match bit for bit; credit-flow rows record ``batch: null``
with the refusal reason.

The timed runs keep telemetry at its default (off) so the recorded numbers
track the kernels themselves; a separate short telemetry-on pass per
experiment checks that the kernels' event streams, metric registries
and occupancy-vs-cycle samples are identical, and its summary is stored
under each result's ``telemetry`` key.

Usage::

    PYTHONPATH=src python benchmarks/record.py          # full horizons
    PYTHONPATH=src python benchmarks/record.py --smoke  # ~30 s CI smoke run
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.scenario import Scenario, prepare
from repro.telemetry import Telemetry

OUT_PATH = Path(__file__).parent / "BENCH_fastpath.json"

TELEMETRY_SAMPLE_INTERVAL = 64

#: arch name per kernel key (record rows use the kernel keys)
ARCHES = {"checked": "pipelined", "fast": "pipelined_fast",
          "batch": "pipelined_batch"}

#: timing repeats for the sub-second kernels (wall time on a shared machine
#: is at the mercy of scheduling noise; keep the cleanest run)
FAST_REPEATS = 3
BATCH_REPEATS = 10

#: batch window used for the timed batch runs — large windows amortize the
#: per-window state hoist/write-back
BATCH_WINDOW = 65_536


def _fingerprint(sw) -> dict:
    """Everything the kernels must agree on, bit for bit."""
    return {
        "stats": sw.stats,
        "ct_latency": sw.ct_latency,
        "ct_latency_hist": sw.ct_latency_hist,
        "total_latency": sw.total_latency,
        "stagger_extra": sw.stagger_extra,
        "cut_through_waves": sw.cut_through_waves,
        "plain_read_waves": sw.plain_read_waves,
        "write_waves": sw.write_waves,
        "idle_cycles": sw.idle_cycles,
        "deadline_overrides": sw.deadline_overrides,
        "overrun_drops": sw.overrun_drops,
        "cycle": sw.cycle,
    }


def _run(scenario: Scenario, kernel: str, telemetry: Telemetry | None = None):
    """Build one kernel through the scenario registry, run it, time it."""
    params = dict(scenario.params)
    if kernel == "batch":
        params["batch_cycles"] = BATCH_WINDOW
    sc = dataclasses.replace(scenario, arch=ARCHES[kernel], params=params)
    sw = prepare(sc, telemetry=telemetry).switch
    t0 = time.perf_counter()
    sw.run(sc.horizon)
    if sc.drain:
        sw.drain()
    elapsed = time.perf_counter() - t0
    return sw, elapsed


def _assert_identical(name: str, want: dict, got: dict, kernel: str) -> None:
    for key, w in want.items():
        g = got[key]
        assert g == w, f"{name}: {key} mismatch\n  checked={w}\n  {kernel}={g}"


def _telemetry_pass(scenario: Scenario, cycles: int,
                    kernels: tuple[str, ...]) -> dict:
    """Short telemetry-on run of each kernel; assert stream equivalence and
    return the occupancy-vs-cycle summary for the record."""
    short = dataclasses.replace(scenario, horizon=cycles)
    tels = {}
    for kernel in kernels:
        tels[kernel] = Telemetry.on(sample_interval=TELEMETRY_SAMPLE_INTERVAL)
        _run(short, kernel, telemetry=tels[kernel])
    ref = tels["checked"]
    for kernel in kernels[1:]:
        tel = tels[kernel]
        assert ref.events.sorted_events() == tel.events.sorted_events(), \
            f"checked/{kernel} event streams diverge"
        assert ref.events.drop_taxonomy() == tel.events.drop_taxonomy()
        assert ref.samples == tel.samples, \
            f"checked/{kernel} occupancy samples diverge"
        assert ref.metrics.as_dict() == tel.metrics.as_dict()
    return {
        "events": len(ref.events),
        "drop_taxonomy": ref.events.drop_taxonomy(),
        "occupancy": ref.occupancy_series(),
        "equivalent": True,
        "kernels": list(kernels),
    }


def _batch_refusal(scenario: Scenario) -> str | None:
    """Why the batch kernel cannot run this workload, or None if it can."""
    if scenario.params.get("credit_flow"):
        return "credit_flow gates source polling on switch state"
    return None


def _experiments(scale: int) -> list[Scenario]:
    """One Scenario per workload (arch is swapped per kernel by ``_run``).

    ``warmup=0`` everywhere: these fingerprints predate the scenario layer
    and its horizon//5 default, and must stay bit-identical to the seed
    BENCH_fastpath.json numbers.
    """
    e13_params = {"n": 8, "addresses": 256, "credit_flow": True}
    b = 2 * e13_params["n"]  # packet_words = depth (= 2n) * quanta
    e13_cycles = (20_000 * b // 2) // scale

    def sc(name, params, traffic, cycles, drain, seed):
        return Scenario(name=name, arch="pipelined", horizon=cycles,
                        params=params, traffic=traffic, seeds=[seed],
                        warmup=0, drain=drain)

    return [
        sc("E15 8x8 load 0.6 drop-tail", {"n": 8, "addresses": 128},
           {"kind": "renewal", "load": 0.6}, 150_000 // scale, True, 1),
        sc("E15 8x8 saturated credits",
           {"n": 8, "addresses": 64, "credit_flow": True},
           {"kind": "saturating", "load": 1.0}, 150_000 // scale, False, 2),
        sc("E15 4x4 saturated tiny buffer", {"n": 4, "addresses": 8},
           {"kind": "saturating", "load": 1.0}, 100_000 // scale, True, 3),
        sc("E13 pipelined saturation point", e13_params,
           {"kind": "renewal", "load": 1.0}, e13_cycles, False, 2),
        sc("E13 pipelined latency point", e13_params,
           {"kind": "renewal", "load": 0.8}, e13_cycles, False, 3),
    ]


def _tape_variant(scenario: Scenario) -> Scenario:
    """The same workload on a tape-consumable source (see BatchRenewalSource:
    renewal traffic is re-drawn as per-link tapes; saturating is already
    batchable, so the scenario passes through unchanged)."""
    if scenario.traffic.kind == "renewal":
        traffic = {"kind": "renewal_tape", "load": scenario.traffic.load}
        return dataclasses.replace(scenario, traffic=traffic)
    return scenario


def _record_batch(scenario: Scenario, results: dict) -> None:
    """Three-way run on the tape workload; record batch timing + identity.

    The tape variant of a renewal workload is a *different* arrival stream
    (per-link spawned RNGs), so the checked and fast kernels are re-run on
    it to anchor the bit-identity assertion; their timings are not
    re-recorded.
    """
    reason = _batch_refusal(scenario)
    if reason is not None:
        results["batch"] = None
        results["batch_unsupported"] = reason
        return
    tape_sc = _tape_variant(scenario)
    checked, t_checked = _run(tape_sc, "checked")
    fast, _ = _run(tape_sc, "fast")
    batch, t_batch = _run(tape_sc, "batch")
    for _ in range(BATCH_REPEATS - 1):
        _, t_retry = _run(tape_sc, "batch")
        t_batch = min(t_batch, t_retry)
    fp = _fingerprint(checked)
    _assert_identical(tape_sc.name, fp, _fingerprint(fast), "fast")
    _assert_identical(tape_sc.name, fp, _fingerprint(batch), "batch")
    total_cycles = fp["cycle"]
    results["batch"] = {
        "traffic": tape_sc.traffic.kind,
        "cycles": total_cycles,
        "batch_window": BATCH_WINDOW,
        "batch_seconds": round(t_batch, 4),
        "batch_cycles_per_sec": round(total_cycles / t_batch),
        "batch_speedup": round(t_checked / t_batch, 2),
        "delivered": fp["stats"].delivered,
        "dropped": fp["stats"].dropped,
        "identical": True,
        "jit_state": batch.jit_state,
    }
    results["batch_telemetry"] = _telemetry_pass(
        tape_sc, max(tape_sc.horizon // 10, 1000),
        ("checked", "fast", "batch"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="scale horizons down ~20x for a quick CI check")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    scale = 20 if args.smoke else 1

    results = []
    for scenario in _experiments(scale):
        name, cycles = scenario.name, scenario.horizon
        slow, t_slow = _run(scenario, "checked")
        fast, t_fast = _run(scenario, "fast")
        for _ in range(FAST_REPEATS - 1):
            _, t_retry = _run(scenario, "fast")
            t_fast = min(t_fast, t_retry)
        fp_slow = _fingerprint(slow)
        _assert_identical(name, fp_slow, _fingerprint(fast), "fast")
        total_cycles = fp_slow["cycle"]  # includes drain cycles
        telemetry = _telemetry_pass(scenario, max(cycles // 10, 1000),
                                    ("checked", "fast"))
        row = {
            "experiment": name,
            "cycles": total_cycles,
            "checked_seconds": round(t_slow, 4),
            "fast_seconds": round(t_fast, 4),
            "checked_cycles_per_sec": round(total_cycles / t_slow),
            "fast_cycles_per_sec": round(total_cycles / t_fast),
            "speedup": round(t_slow / t_fast, 2),
            "delivered": fp_slow["stats"].delivered,
            "dropped": fp_slow["stats"].dropped,
            "identical": True,
            "telemetry": telemetry,
        }
        _record_batch(scenario, row)
        results.append(row)
        batch_note = "batch unsupported"
        if row["batch"] is not None:
            batch_note = (f"batch {row['batch']['batch_cycles_per_sec']:,}"
                          f" c/s ({row['batch']['batch_speedup']:.0f}x)")
        print(f"{name:34s} {t_slow:7.2f}s -> {t_fast:6.2f}s "
              f"({row['speedup']:.1f}x), {batch_note}, stats identical, "
              f"telemetry equivalent ({telemetry['events']} events)")

    payload = {
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    slowest = min(r["speedup"] for r in results)
    print(f"minimum speedup across workloads: {slowest:.1f}x")
    rc = 0
    if not args.smoke and slowest < 5.0:
        print("WARNING: below the 5x fast-kernel target")
        rc = 1
    batch_rates = [r["batch"]["batch_cycles_per_sec"]
                   for r in results if r.get("batch")]
    if batch_rates:
        print(f"peak batch kernel rate: {max(batch_rates):,} cycles/sec")
        if not args.smoke and max(batch_rates) < 1_000_000:
            print("WARNING: batch kernel below the 1M cycles/sec target")
            rc = 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
