"""Tests for multi-quantum packets (§3.5: sizes are integer multiples of the
buffer-width quantum) — packets of ``quanta * depth`` words moved by chains
of B-spaced waves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    RenewalPacketSource,
    SaturatingSource,
    TracePacketSource,
)


def _trace_switch(n=2, addresses=16, quanta=2, schedule=None, **cfg_kwargs):
    cfg = PipelinedSwitchConfig(n=n, addresses=addresses, quanta=quanta, **cfg_kwargs)
    src = TracePacketSource(
        n_out=n, packet_words=cfg.packet_words, schedule=schedule or {}
    )
    return PipelinedSwitch(cfg, src), cfg


def test_config_validation():
    with pytest.raises(ValueError):
        PipelinedSwitchConfig(n=2, quanta=0)
    with pytest.raises(ValueError):
        PipelinedSwitchConfig(n=2, addresses=1, quanta=2)
    cfg = PipelinedSwitchConfig(n=4, quanta=3)
    assert cfg.packet_words == 3 * 8


def test_single_long_packet_cuts_through():
    """A 2-quantum packet to an idle output: head out at cycle 2 (the chain
    continues seamlessly, one word per cycle, 2B words total)."""
    sw, cfg = _trace_switch(schedule={0: [(0, 1)]})
    sw.run(cfg.packet_words * 6)
    assert sw.stats.delivered == 1
    assert sw.ct_latency.mean == 2.0
    uid, head, payload = sw.sinks[1].delivered[0]
    assert len(payload) == cfg.packet_words


def test_contiguous_output_across_quanta():
    """The sink raises on any gap inside a packet, so clean delivery of a
    4-quantum packet proves the chain initiated exactly B-spaced waves."""
    sw, cfg = _trace_switch(quanta=4, schedule={0: [(0, 0)], 1: [(2, 0)]})
    sw.run(cfg.packet_words * 10)
    assert sw.stats.delivered == 2


def test_two_packets_same_output_fifo():
    sw, cfg = _trace_switch(schedule={0: [(0, 1)], 1: [(1, 1)]})
    sw.run(cfg.packet_words * 10)
    assert sw.stats.delivered == 2
    first, second = sw.sinks[1].delivered
    assert second[1] - first[1] >= cfg.packet_words  # one packet time apart


@pytest.mark.parametrize("quanta", [2, 3])
def test_moderate_load_lossless(quanta):
    n = 4
    cfg = PipelinedSwitchConfig(n=n, addresses=16 * quanta, quanta=quanta)
    src = RenewalPacketSource(
        n_out=n, packet_words=cfg.packet_words, load=0.5, seed=quanta
    )
    sw = PipelinedSwitch(cfg, src)
    sw.run(30_000)
    sw.drain()
    assert sw.stats.dropped == 0
    assert sw.stats.delivered == sw.stats.offered


def test_saturation_with_credits_lossless():
    cfg = PipelinedSwitchConfig(n=4, addresses=64, quanta=2, credit_flow=True)
    src = SaturatingSource(n_out=4, packet_words=cfg.packet_words, seed=3)
    sw = PipelinedSwitch(cfg, src)
    sw.warmup = 4000
    sw.run(50_000)
    assert sw.stats.dropped == 0
    assert sw.link_utilization > 0.88  # chain-slot granularity costs a little


def test_drop_tail_conserves_with_tiny_buffer():
    cfg = PipelinedSwitchConfig(n=3, addresses=6, quanta=2)
    src = SaturatingSource(n_out=3, packet_words=cfg.packet_words, seed=4)
    sw = PipelinedSwitch(cfg, src)
    sw.run(4_000)
    sw.drain()
    assert sw.stats.dropped > 0
    assert sw.stats.offered == sw.stats.delivered + sw.stats.dropped
    assert sw.is_empty()


def test_occupancy_counted_in_quanta():
    sw, cfg = _trace_switch(quanta=2, addresses=16, schedule={0: [(0, 1)], 1: [(0, 1)]})
    # Run just past both store-chain initiations, before departures complete.
    sw.run(cfg.depth)
    assert sw.buffer.occupancy in (2, 4)  # one or both packets stored (2 quanta each)


@given(
    quanta=st.integers(1, 3),
    n=st.integers(2, 4),
    load=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_invariants_hold_for_any_quanta(quanta, n, load, seed):
    """All structural checks stay silent for multi-quantum chains too."""
    cfg = PipelinedSwitchConfig(n=n, addresses=32 * quanta, quanta=quanta)
    src = RenewalPacketSource(
        n_out=n, packet_words=cfg.packet_words, load=load, seed=seed
    )
    sw = PipelinedSwitch(cfg, src)
    sw.run(2_500)  # any violation raises
    assert sw.buffer.occupancy <= cfg.addresses
