"""Statistics collectors for switch simulations.

All simulators in :mod:`repro.switches`, :mod:`repro.core` and
:mod:`repro.network` report through these collectors so that experiments
compare like with like: identical warmup handling, identical delay
definitions, identical throughput accounting.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field


@dataclass(slots=True)
class Counter:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm)."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        # Catastrophic cancellation in add()/merge() can leave _m2 a tiny
        # negative number; a negative variance would make stdev raise.
        return max(self._m2, 0.0) / (self.count - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    @property
    def stderr(self) -> float:
        """Standard error of the mean (i.i.d. approximation)."""
        if self.count < 2:
            return math.nan
        return self.stdev / math.sqrt(self.count)

    def merge(self, other: "Counter") -> None:
        """Fold another counter into this one (parallel Welford merge).

        Well-defined for every edge case: merging an empty counter is a
        no-op, merging *into* an empty counter copies the other side
        verbatim (including min/max), and single-sample counters
        (``count == 1``, where variance is still NaN) combine exactly.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


@dataclass(slots=True)
class Histogram:
    """Integer-valued histogram with unbounded support (dict-backed)."""

    counts: dict[int, int] = field(default_factory=dict)
    total: int = 0

    def add(self, value: int, weight: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + weight
        self.total += weight

    def pmf(self) -> dict[int, float]:
        if not self.total:
            return {}
        return {k: v / self.total for k, v in sorted(self.counts.items())}

    def quantile(self, q: float) -> int:
        """Smallest value v with P(X <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            raise ValueError("empty histogram")
        need = q * self.total
        run = 0
        for value in sorted(self.counts):
            run += self.counts[value]
            if run >= need:
                return value
        return max(self.counts)

    @property
    def mean(self) -> float:
        if not self.total:
            return math.nan
        return sum(k * v for k, v in self.counts.items()) / self.total

    def percentile(self, p: float) -> int:
        """Smallest value v with at least ``p`` percent of mass at or below."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)


# Bucket edges shared by the telemetry latency histograms: a packet's
# minimum cut-through latency is 2 cycles, and queueing delays grow
# geometrically under load, so powers of two up to 64k cycles cover every
# workload in the benchmark suite with ~16 buckets.
LATENCY_BUCKET_EDGES: tuple[float, ...] = tuple(float(2 ** k) for k in range(1, 17))


@dataclass(slots=True)
class BucketHistogram:
    """Fixed-bucket histogram with percentile estimation.

    ``edges`` are inclusive upper bounds of the finite buckets (Prometheus
    ``le`` semantics); one implicit overflow bucket catches everything
    larger.  Identical edges across collectors make histograms mergeable
    and let exporters render cumulative bucket counts directly.
    """

    edges: tuple[float, ...] = LATENCY_BUCKET_EDGES
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        edges = tuple(float(e) for e in self.edges)
        if not edges:
            raise ValueError("need at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        self.edges = edges
        if not self.counts:
            self.counts = [0] * (len(edges) + 1)  # + overflow bucket
        elif len(self.counts) != len(edges) + 1:
            raise ValueError(
                f"{len(edges)} edges need {len(edges) + 1} buckets, "
                f"got {len(self.counts)}"
            )

    def add(self, value: float, weight: int = 1) -> None:
        self.counts[bisect_left(self.edges, value)] += weight
        self.total += weight
        self.sum += value * weight
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` rows, ending at +inf."""
        rows: list[tuple[float, int]] = []
        run = 0
        for edge, c in zip(self.edges, self.counts):
            run += c
            rows.append((edge, run))
        rows.append((math.inf, run + self.counts[-1]))
        return rows

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile by interpolating in its bucket.

        The end buckets interpolate against the observed min/max, so exact
        values come back for mass concentrated at the extremes.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.total:
            raise ValueError("empty histogram")
        need = p / 100.0 * self.total
        run = 0
        for b, c in enumerate(self.counts):
            if run + c >= need and c > 0:
                lo = self.minimum if b == 0 else self.edges[b - 1]
                hi = self.maximum if b == len(self.edges) else self.edges[b]
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum)
                if hi <= lo:
                    return lo
                frac = (need - run) / c
                return lo + frac * (hi - lo)
            run += c
        return self.maximum

    def merge(self, other: "BucketHistogram") -> None:
        """Fold another histogram with identical edges into this one."""
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{other.edges} vs {self.edges}"
            )
        for b, c in enumerate(other.counts):
            self.counts[b] += c
        self.total += other.total
        self.sum += other.sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


@dataclass(slots=True)
class SwitchStats:
    """Aggregate statistics for one simulated switch run.

    The ``warmup`` horizon (in slots/cycles) excludes transient behaviour:
    arrivals, departures and losses occurring before ``warmup`` are counted
    separately and excluded from delay/throughput/loss figures.
    """

    n_outputs: int
    warmup: int = 0
    offered: int = 0  # cells/packets offered after warmup
    accepted: int = 0  # admitted to a buffer after warmup
    dropped: int = 0  # rejected for lack of buffer space after warmup
    delivered: int = 0  # departed after warmup (and arrived after warmup)
    delay: Counter = field(default_factory=Counter)
    delay_hist: Histogram = field(default_factory=Histogram)
    per_output_delivered: list[int] = field(default_factory=list)
    horizon: int = 0  # last slot/cycle simulated (exclusive)

    def __post_init__(self) -> None:
        if not self.per_output_delivered:
            self.per_output_delivered = [0] * self.n_outputs

    # -- recording ---------------------------------------------------------
    def record_offer(self, when: int) -> None:
        if when >= self.warmup:
            self.offered += 1

    def record_accept(self, when: int) -> None:
        if when >= self.warmup:
            self.accepted += 1

    def record_drop(self, when: int) -> None:
        if when >= self.warmup:
            self.dropped += 1

    def record_departure(self, dst: int, arrival: int, departure: int) -> None:
        # Throughput counts every departure in the measurement window —
        # under saturation most departures are of cells that arrived long
        # before, and excluding them would bias throughput down.
        if departure >= self.warmup:
            self.delivered += 1
            self.per_output_delivered[dst] += 1
        # Delay statistics are restricted to post-warmup arrivals so the
        # transient (e.g. initially empty queues) does not contaminate them.
        if arrival >= self.warmup:
            d = departure - arrival
            self.delay.add(d)
            self.delay_hist.add(d)

    # -- derived figures ----------------------------------------------------
    @property
    def measured_slots(self) -> int:
        return max(self.horizon - self.warmup, 0)

    @property
    def throughput(self) -> float:
        """Delivered cells per output per slot (the paper's link utilization)."""
        slots = self.measured_slots
        if slots <= 0:
            return math.nan
        return self.delivered / (slots * self.n_outputs)

    @property
    def loss_probability(self) -> float:
        if self.offered == 0:
            return math.nan
        return self.dropped / self.offered

    @property
    def mean_delay(self) -> float:
        return self.delay.mean

    def summary(self) -> dict[str, float]:
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "throughput": self.throughput,
            "loss_probability": self.loss_probability,
            "mean_delay": self.mean_delay,
            "p99_delay": (
                float(self.delay_hist.quantile(0.99)) if self.delay_hist.total else math.nan
            ),
        }


def occupancy_time_average(samples: list[int]) -> float:
    """Time-averaged buffer occupancy from per-slot samples."""
    if not samples:
        return math.nan
    return sum(samples) / len(samples)
