"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.parametrize(
    "arch", ["fifo", "voq", "output", "shared", "crosspoint", "block",
             "speedup", "interleaved", "knockout"],
)
def test_simulate_every_architecture(arch, capsys):
    rc = main(["simulate", "--arch", arch, "-n", "4", "--load", "0.5",
               "--slots", "1500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "4x4" in out


@pytest.mark.parametrize("sched", ["pim", "islip", "2drr", "greedy", "max"])
def test_simulate_voq_schedulers(sched, capsys):
    rc = main(["simulate", "--arch", "voq", "--scheduler", sched, "-n", "4",
               "--load", "0.5", "--slots", "800"])
    assert rc == 0


def test_simulate_bursty(capsys):
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.5",
               "--slots", "1500", "--burst", "6"])
    assert rc == 0


def test_pipelined_command(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.4", "--cycles", "4000",
               "--addresses", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "link utilization" in out
    assert "cut-through" in out


def test_pipelined_with_credits_and_quanta(capsys):
    rc = main(["pipelined", "-n", "2", "--load", "0.8", "--cycles", "4000",
               "--addresses", "32", "--quanta", "2", "--credits"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dropped packets      0" in out.replace("  ", " ") or "0" in out


def test_wormhole_command(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8"])
    assert rc == 0
    assert "delivered_fraction" in capsys.readouterr().out


def test_wormhole_torus_dateline(capsys):
    rc = main(["wormhole", "--k", "4", "--dims", "2", "--lanes", "2",
               "--load", "0.3", "--cycles", "2000", "--message", "8",
               "--wrap", "--dateline"])
    assert rc == 0
    assert "torus" in capsys.readouterr().out


@pytest.mark.parametrize("chip", ["1", "2", "3"])
def test_vlsi_reports(chip, capsys):
    rc = main(["vlsi", "--chip", chip])
    assert rc == 0
    assert "paper" in capsys.readouterr().out


def test_vlsi_comparisons(capsys):
    rc = main(["vlsi", "--chip", "3", "--comparisons"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PRIZMA" in out
    assert "16x" in out


def test_sizing_command(capsys):
    rc = main(["sizing", "-n", "8", "--load", "0.7", "--target", "1e-2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shared buffering" in out
    assert "input smoothing" in out


@pytest.mark.parametrize("kernel", ["checked", "fast"])
def test_trace_command_writes_valid_chrome_trace(kernel, tmp_path, capsys):
    from repro.telemetry.export import validate_chrome_trace

    out = tmp_path / "trace.json"
    rc = main(["trace", kernel, "--cycles", "200", "-n", "4",
               "--addresses", "32", "--out", str(out)])
    assert rc == 0
    import json

    trace = json.loads(out.read_text())
    validate_chrome_trace(trace)
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"M0", "in0", "out0"} <= names
    assert "perfetto" in capsys.readouterr().out


def test_trace_checked_and_fast_agree(tmp_path):
    import json

    outs = []
    for kernel in ("checked", "fast"):
        out = tmp_path / f"{kernel}.json"
        rc = main(["trace", kernel, "--cycles", "150", "-n", "2",
                   "--addresses", "16", "--out", str(out)])
        assert rc == 0
        outs.append(json.loads(out.read_text()))
    assert outs[0] == outs[1]


def test_pipelined_telemetry_outputs(tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.txt"
    events = tmp_path / "events.jsonl"
    rc = main(["pipelined", "-n", "2", "--load", "0.4", "--cycles", "2000",
               "--addresses", "32", "--metrics", str(metrics),
               "--events", str(events), "--sample-interval", "64"])
    assert rc == 0
    assert "occupancy:" in capsys.readouterr().out
    assert "repro_port_arrivals_total" in metrics.read_text()
    lines = events.read_text().strip().splitlines()
    assert lines and all(json.loads(l)["kind"] for l in lines)


def test_simulate_telemetry_outputs(tmp_path):
    events = tmp_path / "events.jsonl"
    rc = main(["simulate", "--arch", "shared", "-n", "4", "--load", "0.9",
               "--slots", "1000", "--capacity", "8", "--events", str(events)])
    assert rc == 0
    text = events.read_text()
    assert '"kind":"drop"' in text and '"cause":"buffer_full"' in text


def test_bench_json_artifact(tmp_path):
    import json

    out = tmp_path / "bench.json"
    rc = main(["bench", "--cycles", "400", "--json", str(out)])
    assert rc == 0
    artifact = json.loads(out.read_text())
    assert artifact["smoke"] is True
    assert len(artifact["results"]) == 1
    row = artifact["results"][0]
    # same row schema as benchmarks/BENCH_fastpath.json
    for key in ("experiment", "cycles", "checked_seconds", "fast_seconds",
                "checked_cycles_per_sec", "fast_cycles_per_sec", "speedup",
                "delivered", "dropped", "identical"):
        assert key in row
    assert row["identical"] is True
    assert row["speedup"] > 0
