"""FIFO input queueing — the paper's section 2.1 worst performer.

One FIFO queue per input; only the head-of-line (HoL) cell of each queue is
eligible for forwarding.  When several HoL cells want the same output, one
wins (uniformly at random, as in [KaHM87]) and the others — *and every cell
behind them* — wait.  This head-of-line blocking limits saturation throughput
to ``2 - sqrt(2) ~= 0.586`` as the switch grows [KaHM87]; the paper quotes
"about 60 %".
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.packet import Cell
from repro.sim.rng import make_rng
from repro.switches.base import SlottedSwitch


class FifoInputQueued(SlottedSwitch):
    """n_in FIFO input queues, random contention resolution among HoL cells.

    Parameters
    ----------
    capacity:
        Per-input queue capacity in cells (``None`` = infinite, the [KaHM87]
        saturation setting).
    arbitration:
        ``"random"`` (default, matches [KaHM87]) or ``"round_robin"`` —
        per-output rotating priority over inputs.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        capacity: int | None = None,
        arbitration: str = "random",
        warmup: int = 0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_in, n_out, warmup)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if arbitration not in ("random", "round_robin"):
            raise ValueError(f"unknown arbitration {arbitration!r}")
        self.capacity = capacity
        self.arbitration = arbitration
        self.queues: list[deque[Cell]] = [deque() for _ in range(n_in)]
        self.rng = make_rng(seed)
        self._rr_pointer = [0] * n_out

    def _admit(self, cell: Cell) -> bool:
        q = self.queues[cell.src]
        if self.capacity is not None and len(q) >= self.capacity:
            return False
        q.append(cell)
        return True

    def _select_departures(self) -> list[Cell | None]:
        # Group contending inputs by requested output.
        contenders: dict[int, list[int]] = {}
        for i, q in enumerate(self.queues):
            if q:
                contenders.setdefault(q[0].dst, []).append(i)
        departures: list[Cell | None] = [None] * self.n_out
        for j, inputs in contenders.items():
            if self.arbitration == "random":
                winner = inputs[int(self.rng.integers(0, len(inputs)))]
            else:
                ptr = self._rr_pointer[j]
                winner = min(inputs, key=lambda i: (i - ptr) % self.n_in)
                self._rr_pointer[j] = (winner + 1) % self.n_in
            departures[j] = self.queues[winner].popleft()
        return departures

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)
