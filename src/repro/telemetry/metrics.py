"""Named metrics registry: counters, gauges, bucketed histograms.

Every switch kernel publishes the same metric families through a
:class:`MetricsRegistry` — per-port arrival/departure/drop counters,
per-bank access counters, arbitration-outcome counters per
:class:`~repro.core.control.WaveOp`, buffer-occupancy and credit-level
gauges, and fixed-bucket latency histograms (edges shared via
:data:`repro.sim.stats.LATENCY_BUCKET_EDGES` so histograms from different
runs merge).

Disabled collection must cost nothing on the hot path, so there are two
implementations behind one interface: the real registry, and
:class:`NullMetricsRegistry`, whose metric handles are shared do-nothing
singletons.  Kernels additionally cache a single ``enabled`` boolean and
skip the call sites entirely — the null objects only exist so that code
holding a handle never needs a None check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.stats import LATENCY_BUCKET_EDGES, BucketHistogram

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values (in that replacement
    order, so an existing backslash never doubles an escape we added).
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def full_name(name: str, labels: LabelItems) -> str:
    """Prometheus-style rendering: ``name{k="v",...}`` (sorted keys).

    Label values are escaped per the text exposition format, so values
    holding paths, quotes or newlines stay scrapeable.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass(slots=True)
class CounterMetric:
    """Monotonically increasing count."""

    name: str
    labels: LabelItems = ()
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass(slots=True)
class GaugeMetric:
    """Last-written value, with the min/max ever written alongside."""

    name: str
    labels: LabelItems = ()
    value: float = math.nan
    minimum: float = math.inf
    maximum: float = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


@dataclass(slots=True)
class HistogramMetric:
    """Fixed-bucket histogram (see :class:`~repro.sim.stats.BucketHistogram`)."""

    name: str
    labels: LabelItems = ()
    hist: BucketHistogram = field(
        default_factory=lambda: BucketHistogram(LATENCY_BUCKET_EDGES)
    )

    def observe(self, value: float, weight: int = 1) -> None:
        self.hist.add(value, weight)

    def percentile(self, p: float) -> float:
        return self.hist.percentile(p)


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    ``registry.counter("repro_port_drops_total", port=3, cause="head_overrun")``
    returns the same handle on every call with the same name and labels, so
    hot paths fetch handles once at attach time and bump plain attributes
    afterwards.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], object] = {}
        self._help: dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach exposition help text to the metric family ``name``.

        Safe to call repeatedly; the last description wins.  Exporters
        emit it as a ``# HELP`` line ahead of the family's samples.
        """
        self._help[name] = help_text

    def help_for(self, name: str) -> str | None:
        """Help text registered for family ``name``, or ``None``."""
        return self._help.get(name)

    def _get(self, name: str, labels: dict[str, object], factory):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {full_name(name, key[1])} already registered "
                f"as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> CounterMetric:
        return self._get(name, labels, CounterMetric)

    def gauge(self, name: str, **labels: object) -> GaugeMetric:
        return self._get(name, labels, GaugeMetric)

    def histogram(
        self, name: str, edges: tuple[float, ...] = LATENCY_BUCKET_EDGES,
        **labels: object,
    ) -> HistogramMetric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = HistogramMetric(name, key[1], BucketHistogram(edges))
            self._metrics[key] = metric
        elif not isinstance(metric, HistogramMetric):
            raise TypeError(
                f"metric {full_name(name, key[1])} already registered "
                f"as {type(metric).__name__}"
            )
        elif metric.hist.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name} re-registered with different edges")
        return metric

    def __iter__(self):
        """Metrics in deterministic (name, labels) order."""
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict[str, object]:
        """Flat snapshot used by tests and the JSON exporters.

        Counters/gauges map to their value; histograms to a dict with
        total/sum/min/max and cumulative bucket counts.
        """
        out: dict[str, object] = {}
        for m in self:
            key = full_name(m.name, m.labels)
            if isinstance(m, HistogramMetric):
                out[key] = {
                    "total": m.hist.total,
                    "sum": m.hist.sum,
                    "min": m.hist.minimum,
                    "max": m.hist.maximum,
                    "buckets": [[le, c] for le, c in m.hist.cumulative()],
                }
            else:
                out[key] = m.value
        return out


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float, weight: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """No-op stand-in: hands out shared do-nothing metric handles."""

    enabled = False

    def describe(self, name: str, help_text: str) -> None:
        pass

    def help_for(self, name: str) -> None:
        return None

    def counter(self, name: str, **labels: object) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges=LATENCY_BUCKET_EDGES, **labels: object):
        return _NULL_HISTOGRAM

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def as_dict(self) -> dict[str, object]:
        return {}


NULL_METRICS = NullMetricsRegistry()
