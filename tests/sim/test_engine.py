"""Tests for the two-phase synchronous kernel."""

import pytest

from repro.sim.engine import Engine, Register, ShiftPipeline


class _Counter:
    """Toy clocked component: counts its own commits."""

    def __init__(self):
        self.value = 0
        self._next = 0

    def evaluate(self, cycle):
        self._next = self.value + 1

    def commit(self, cycle):
        self.value = self._next


class _Follower:
    """Reads another component's committed state during evaluate."""

    def __init__(self, leader):
        self.leader = leader
        self.seen = []
        self._snapshot = None

    def evaluate(self, cycle):
        self._snapshot = self.leader.value

    def commit(self, cycle):
        self.seen.append(self._snapshot)


def test_engine_requires_clocked_protocol():
    with pytest.raises(TypeError):
        Engine().add(object())


def test_engine_advances_cycles():
    eng = Engine()
    eng.add(_Counter())
    eng.run(5)
    assert eng.cycle == 5


def test_engine_rejects_negative_run():
    with pytest.raises(ValueError):
        Engine().run(-1)


def test_two_phase_order_independence():
    """The follower sees the leader's *previous* value regardless of
    registration order — the defining property of two-phase evaluation."""
    for leader_first in (True, False):
        eng = Engine()
        leader = _Counter()
        follower = _Follower(leader)
        if leader_first:
            eng.add(leader)
            eng.add(follower)
        else:
            eng.add(follower)
            eng.add(leader)
        eng.run(4)
        assert follower.seen == [0, 1, 2, 3]


class TestRegister:
    def test_holds_value_without_assignment(self):
        r = Register(initial=7)
        r.evaluate(0)
        r.commit(0)
        assert r.q == 7

    def test_updates_on_commit_only(self):
        r = Register(initial=0)
        r.d = 42
        assert r.q == 0  # not yet committed
        r.commit(0)
        assert r.q == 42

    def test_d_is_write_only(self):
        r = Register()
        with pytest.raises(AttributeError):
            _ = r.d

    def test_repr_contains_name(self):
        assert "clk" in repr(Register(name="clk"))


class TestShiftPipeline:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ShiftPipeline(0)

    def test_values_emerge_after_depth_cycles(self):
        p = ShiftPipeline(3, initial=None)
        outputs = []
        for t in range(6):
            p.push(t)
            outputs.append(p.stage(2))
            p.commit(t)
        # stage 2 sees the value pushed 3 cycles earlier
        assert outputs == [None, None, None, 0, 1, 2]

    def test_unpushed_cycles_inject_initial(self):
        p = ShiftPipeline(2, initial="idle")
        p.push("x")
        p.commit(0)
        p.commit(1)  # nothing pushed
        assert list(p) == ["idle", "x"]

    def test_iteration_matches_stages(self):
        p = ShiftPipeline(4)
        for t in range(4):
            p.push(t)
            p.commit(t)
        assert list(p) == [p.stage(k) for k in range(4)]
