"""Queueing under bursty (on/off) traffic — the §2.1 burst remark, analytically.

The paper warns that input queueing degrades "when the traffic is bursty and
the bursts are larger than the buffers"; ablation A2 shows bursts also erode
the shared-memory advantage.  This module provides the exact finite-buffer
analysis of one output queue fed by ``n`` on/off sources (the
:class:`~repro.traffic.bursty.BurstyOnOff` model):

* each source is *off*, or *on toward this output*, delivering one cell per
  slot while on; bursts end per slot with probability ``1/mean_burst``;
* a source starts a burst toward this output with per-slot probability
  chosen so the stationary per-source load toward it is ``load / n``;
* the joint Markov chain over (active bursts ``m``, queue length ``q``) is
  solved by power iteration; loss is the expected overflow fraction.

Cross-checked against the :class:`~repro.switches.output_queued.OutputQueued`
simulator driven by :class:`~repro.traffic.bursty.BurstyOnOff` in
``tests/analysis/test_bursty_queue.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats


def _burst_state_transitions(n: int, load: float, mean_burst: float) -> np.ndarray:
    """T[m, m']: transition matrix of the number of active bursts.

    Survivors ~ Bin(m, 1 - p_end); fresh starts ~ Bin(n - m, r) with ``r``
    set so a source targets this output a fraction ``load/n`` of the time.
    """
    if not 0.0 < load < 1.0:
        raise ValueError(f"load must be in (0, 1), got {load}")
    if mean_burst < 1.0:
        raise ValueError(f"mean burst must be >= 1 cell, got {mean_burst}")
    if n < 1:
        raise ValueError(f"need >= 1 source, got {n}")
    p_end = 1.0 / mean_burst
    target = load / n  # stationary P(source bursting toward this output)
    r = p_end * target / (1.0 - target)
    t = np.zeros((n + 1, n + 1))
    for m in range(n + 1):
        survive = sstats.binom.pmf(np.arange(m + 1), m, 1.0 - p_end)
        fresh = sstats.binom.pmf(np.arange(n - m + 1), n - m, r)
        t[m, : m + 1 + n - m] = np.convolve(survive, fresh)[: n + 1]
    return t


def bursty_queue_solution(
    n: int,
    load: float,
    mean_burst: float,
    capacity: int,
    tol: float = 1e-12,
    max_iter: int = 200_000,
) -> dict:
    """Stationary joint distribution and loss of the bursty output queue.

    Chain order per slot: burst states transition, the ``m'`` active bursts
    each deliver one cell (admitted up to ``capacity``), one cell departs.
    Returns the loss probability, mean queue and the marginal distributions.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    t = _burst_state_transitions(n, load, mean_burst)
    states_q = capacity + 1
    p = np.zeros((n + 1, states_q))
    p[0, 0] = 1.0
    loss_rate = 0.0
    for _ in range(max_iter):
        # burst-state transition: P1[m', q] = sum_m P[m, q] T[m, m']
        p1 = t.T @ p
        # arrivals (m' cells) then one departure, with overflow accounting
        nxt = np.zeros_like(p)
        lost = 0.0
        for m in range(n + 1):
            row = p1[m]
            if not row.any():
                continue
            shifted = np.zeros(states_q)
            for q in range(states_q):
                if row[q] == 0.0:
                    continue
                q_in = q + m
                over = max(q_in - capacity, 0)
                lost += row[q] * over
                q_new = max(min(q_in, capacity) - 1, 0)
                shifted[q_new] += row[q]
            nxt[m] = shifted
        delta = np.abs(nxt - p).max()
        p = nxt
        loss_rate = lost
        if delta < tol:
            break
    p /= p.sum()
    arrivals = load  # cells per slot offered to this output in expectation
    marginal_q = p.sum(axis=0)
    marginal_m = p.sum(axis=1)
    return {
        "loss_probability": loss_rate / arrivals,
        "mean_queue": float(np.arange(states_q) @ marginal_q),
        "queue_distribution": marginal_q,
        "burst_distribution": marginal_m,
    }


def bursty_loss(n: int, load: float, mean_burst: float, capacity: int) -> float:
    """Loss probability of the finite bursty output queue."""
    return bursty_queue_solution(n, load, mean_burst, capacity)["loss_probability"]


def burstiness_penalty(
    n: int, load: float, mean_burst: float, capacity: int
) -> float:
    """Loss ratio bursty / Bernoulli at equal load and buffer — how much a
    given burstiness costs (>= 1; grows rapidly with burst length)."""
    from repro.analysis.buffer_sizing import output_queue_loss

    smooth = output_queue_loss(n, load, capacity)
    rough = bursty_loss(n, load, mean_burst, capacity)
    if smooth <= 0:
        return float("inf") if rough > 0 else 1.0
    return rough / smooth
