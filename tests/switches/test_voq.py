"""Tests for the VOQ (non-FIFO input buffering) switch."""

import pytest

from repro.analysis.hol import KAROL_TABLE
from repro.switches import FifoInputQueued, Islip, MaxSizeMatching, PIM, VoqInputBuffered
from repro.traffic import BernoulliUniform, FixedPermutation


def test_validation():
    with pytest.raises(ValueError):
        VoqInputBuffered(4, 4, PIM(seed=1), capacity_per_input=0)
    with pytest.raises(ValueError):
        VoqInputBuffered(4, 4, PIM(seed=1), capacity_per_voq=0)


def test_permutation_full_throughput():
    sw = VoqInputBuffered(4, 4, Islip())
    stats = sw.run(FixedPermutation([1, 0, 3, 2]), 500)
    assert stats.throughput == pytest.approx(1.0, abs=0.01)


@pytest.mark.parametrize(
    "scheduler_factory",
    [lambda: PIM(iterations=4, seed=2), lambda: Islip(iterations=4), lambda: MaxSizeMatching()],
)
def test_voq_beats_hol_limit(scheduler_factory):
    """Removing the FIFO restriction lifts saturation well above 0.586 —
    the §2.1 claim for non-FIFO input buffering."""
    n = 8
    sw = VoqInputBuffered(n, n, scheduler_factory(), warmup=2000)
    stats = sw.run(BernoulliUniform(n, n, 1.0, seed=3), 20_000)
    assert stats.throughput > KAROL_TABLE[n] + 0.15


def test_voq_latency_worse_than_output_queueing():
    """§2.2 / [AOST93 fig 3]: scheduled input buffering has higher latency
    than output queueing at high load (bench E4 quantifies ~2x)."""
    from repro.switches import OutputQueued

    n, p = 8, 0.8
    voq = VoqInputBuffered(n, n, PIM(iterations=4, seed=4), warmup=2000)
    oq = OutputQueued(n, n, warmup=2000, seed=5)
    d_voq = voq.run(BernoulliUniform(n, n, p, seed=6), 30_000).mean_delay
    d_oq = oq.run(BernoulliUniform(n, n, p, seed=6), 30_000).mean_delay
    assert d_voq > d_oq * 1.3


def test_per_input_capacity_enforced():
    sw = VoqInputBuffered(2, 2, PIM(seed=7), capacity_per_input=3)
    sw.run(BernoulliUniform(2, 2, 1.0, seed=8), 2000)
    assert max(sw._input_occupancy) <= 3
    assert sw.stats.dropped > 0


def test_per_voq_capacity_enforced():
    sw = VoqInputBuffered(2, 2, PIM(seed=9), capacity_per_voq=1)
    sw.run(BernoulliUniform(2, 2, 1.0, seed=10), 2000)
    for row in sw.voqs:
        for q in row:
            assert len(q) <= 1


def test_voq_is_strictly_better_than_fifo_on_same_trace():
    from repro.traffic import TraceSource, record_trace

    n = 8
    trace = record_trace(BernoulliUniform(n, n, 0.9, seed=11), 10_000)
    fifo = FifoInputQueued(n, n, warmup=1000, seed=12)
    voq = VoqInputBuffered(n, n, Islip(), warmup=1000)
    t_fifo = fifo.run(TraceSource(trace, n), 10_000).throughput
    t_voq = voq.run(TraceSource(trace, n), 10_000).throughput
    assert t_voq > t_fifo
