"""E9 — Telegraphos III full-custom buffer (paper §4.4, figure 8, abstract).

Published: 8x8, 16 stages x 256 packets x 16 bits (64 Kbit), 16 ns worst /
10 ns typical clock, 1 Gb/s per link worst case (1.6 typical), 16 Gb/s
aggregate, ~9 mm^2 peripheral, ~45 mm^2 total including crossbar and
cut-through; standard cells would take 41 mm^2 for the half-sized switch
(the "factor of 22"), and an 8x8 standard-cell version ~18x the area.

Ablation: the decoded-address pipeline (figure 7b) vs per-bank decoders
(figure 7a).
"""

from conftest import show

from repro.switches.harness import format_table
from repro.vlsi import pipelined_memory_area
from repro.vlsi.technology import TELEGRAPHOS_III_TECH
from repro.vlsi.telegraphos import factor_of_22_report, telegraphos3_report


def _experiment():
    report = telegraphos3_report()
    f22 = factor_of_22_report()
    fig7a = pipelined_memory_area(
        TELEGRAPHOS_III_TECH, 16, 256, 16, address_pipeline=False
    )
    fig7b = pipelined_memory_area(
        TELEGRAPHOS_III_TECH, 16, 256, 16, address_pipeline=True
    )
    return report, f22, fig7a, fig7b


def test_e09_telegraphos3(run_once):
    report, f22, fig7a, fig7b = run_once(_experiment)
    pub, mod = report["published"], report["model"]
    rows = [[k, pub[k], round(mod[k], 3) if isinstance(mod[k], float) else mod[k]]
            for k in pub]
    show(format_table(["figure", "paper", "model"], rows,
                      title="E9: Telegraphos III full-custom buffer (§4.4)"))
    assert mod["buffer_kbit"] == 64.0
    assert mod["clock_worst_ns"] == 16.0 and mod["clock_typical_ns"] == 10.0
    assert mod["link_gbps_worst"] == 1.0
    assert abs(mod["peripheral_mm2"] - 9.0) < 1.0
    assert abs(mod["buffer_total_mm2"] - 45.0) < 3.0
    assert abs(mod["stdcell_peripheral_4x4_mm2"] - 41.0) < 4.0

    show(format_table(
        ["gain", "paper", "model"],
        [[k, f22["published"][k], round(f22["model"][k], 2)] for k in f22["published"]],
        title="E9: the §4.4 'factor of 22' (std cell -> full custom)",
    ))
    assert abs(f22["model"]["product"] - 22.0) < 5.0

    saving = fig7a.total_mm2 - fig7b.total_mm2
    show(format_table(
        ["variant", "memory mm^2"],
        [["fig 7a (decoder per bank)", round(fig7a.total_mm2, 2)],
         ["fig 7b (decoded-address pipeline)", round(fig7b.total_mm2, 2)],
         ["saving", round(saving, 2)]],
        title="E9 ablation: address pipeline vs per-bank decoders",
    ))
    assert saving > 0
