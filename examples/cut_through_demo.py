#!/usr/bin/env python3
"""Cut-through demo: a cycle-by-cycle trace of the wave machinery.

Prints the :class:`~repro.core.WaveTracer` timeline of the paper's figures 4
and 5 in action on a 2x2 switch (4 banks, 4-word packets): two packets
arrive, one cuts through with a combined WRITE_CT wave, one is buffered and
departs with a separate READ wave; the control pipeline, bank accesses and
link activity are shown per clock cycle.

Run:  python examples/cut_through_demo.py
"""

from repro.core import (
    PipelinedSwitch,
    PipelinedSwitchConfig,
    TracePacketSource,
    WaveTracer,
)


def main() -> None:
    cfg = PipelinedSwitchConfig(n=2, addresses=8)
    b = cfg.packet_words  # 4 words per packet
    # Input 0 sends to output 1 at cycle 0 (will cut through);
    # input 1 sends to output 1 at cycle 1 (output busy -> buffered).
    src = TracePacketSource(
        n_out=2, packet_words=b, schedule={0: [(0, 1)], 1: [(1, 1)]}
    )
    sw = PipelinedSwitch(cfg, src)

    print(f"2x2 pipelined-memory switch: {b} banks, {b}-word packets")
    print("packet A: input 0 -> output 1, head at cycle 0")
    print("packet B: input 1 -> output 1, head at cycle 1 (must queue)\n")

    tracer = WaveTracer(sw)
    tracer.run(4 * b)
    print(tracer.render())

    assert tracer.verify_control_delay_property()
    print("\nfigure-5 property verified: stage k control == stage 0 control "
          "delayed k cycles")

    sw.drain()
    print("\ndeliveries:")
    for j, sink in enumerate(sw.sinks):
        for uid, head, payload in sink.delivered:
            print(f"  output {j}: packet {uid}, head-out cycle {head}, "
                  f"{len(payload)} words verified")
    print(f"\npacket A cut-through latency: "
          f"{sw.sinks[1].delivered[0][1] - 0} cycles (minimum is 2)")
    print(f"packet B waited for output 1: head-out at cycle "
          f"{sw.sinks[1].delivered[1][1]} (one packet time behind A)")
    print(f"\nwaves used: {sw.cut_through_waves} WRITE_CT, "
          f"{sw.write_waves} WRITE, {sw.plain_read_waves} READ")


if __name__ == "__main__":
    main()
