"""Tests for crosspoint and block-crosspoint buffering."""

import pytest

from repro.switches import BlockCrosspoint, CrosspointQueued, SharedBuffer
from repro.traffic import BernoulliUniform, FixedPermutation, TraceSource, record_trace


class TestCrosspoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrosspointQueued(2, 2, capacity=0)
        with pytest.raises(ValueError):
            CrosspointQueued(2, 2, service="lifo")

    def test_full_throughput_at_saturation(self):
        """§2.1: crosspoint queueing achieves optimal link utilization."""
        sw = CrosspointQueued(8, 8, warmup=1000, seed=1)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=2), 15_000)
        assert stats.throughput == pytest.approx(1.0, abs=0.02)

    def test_oldest_first_service(self):
        sw = CrosspointQueued(4, 4, service="oldest_first", warmup=500, seed=3)
        stats = sw.run(BernoulliUniform(4, 4, 0.9, seed=4), 8000)
        assert stats.throughput == pytest.approx(0.9, abs=0.03)

    def test_needs_more_memory_than_shared(self):
        """§2.1: 'a total memory capacity considerably higher' — same total
        budget, crosspoint loses more."""
        n, total = 4, 16
        trace = record_trace(BernoulliUniform(n, n, 0.95, seed=5), 20_000)
        xp = CrosspointQueued(n, n, capacity=total // (n * n), warmup=500, seed=6)
        sh = SharedBuffer(n, n, capacity=total, warmup=500, seed=6)
        loss_xp = xp.run(TraceSource(trace, n), 20_000).loss_probability
        loss_sh = sh.run(TraceSource(trace, n), 20_000).loss_probability
        assert loss_xp > loss_sh

    def test_per_queue_capacity(self):
        sw = CrosspointQueued(2, 2, capacity=1, seed=7)
        sw.run(BernoulliUniform(2, 2, 1.0, seed=8), 1000)
        for row in sw.queues:
            for q in row:
                assert len(q) <= 1


class TestBlockCrosspoint:
    def test_block_must_divide(self):
        with pytest.raises(ValueError):
            BlockCrosspoint(4, 4, block=3)

    def test_degenerate_full_block_acts_like_shared(self):
        """block == n: one shared buffer; same drop behaviour on a trace."""
        n, cap = 4, 8
        trace = record_trace(BernoulliUniform(n, n, 0.95, seed=9), 8000)
        bc = BlockCrosspoint(n, n, block=n, capacity_per_block=cap, warmup=500, seed=10)
        sh = SharedBuffer(n, n, capacity=cap, warmup=500, seed=10)
        loss_bc = bc.run(TraceSource(trace, n), 8000).loss_probability
        loss_sh = sh.run(TraceSource(trace, n), 8000).loss_probability
        assert loss_bc == pytest.approx(loss_sh, abs=0.02)

    def test_degenerate_unit_block_acts_like_crosspoint(self):
        n, cap = 4, 2
        trace = record_trace(BernoulliUniform(n, n, 0.95, seed=11), 8000)
        bc = BlockCrosspoint(n, n, block=1, capacity_per_block=cap, warmup=500, seed=12)
        xp = CrosspointQueued(n, n, capacity=cap, warmup=500, seed=12)
        loss_bc = bc.run(TraceSource(trace, n), 8000).loss_probability
        loss_xp = xp.run(TraceSource(trace, n), 8000).loss_probability
        assert loss_bc == pytest.approx(loss_xp, abs=0.02)

    def test_intermediate_block_between_extremes(self):
        """§2.2: block-crosspoint interpolates crosspoint <-> shared memory
        utilization.  Same total memory, loss ordering holds."""
        n, total = 8, 32
        trace = record_trace(BernoulliUniform(n, n, 0.95, seed=13), 15_000)
        losses = {}
        for block in (1, 2, 4, 8):
            buffers = (n // block) ** 2
            sw = BlockCrosspoint(
                n, n, block=block, capacity_per_block=max(total // buffers, 1),
                warmup=500, seed=14,
            )
            losses[block] = sw.run(TraceSource(trace, n), 15_000).loss_probability
        assert losses[8] < losses[1]  # full sharing beats full partitioning

    def test_full_throughput(self):
        sw = BlockCrosspoint(8, 8, block=4, warmup=1000, seed=15)
        stats = sw.run(BernoulliUniform(8, 8, 1.0, seed=16), 12_000)
        assert stats.throughput == pytest.approx(1.0, abs=0.02)

    def test_permutation_zero_delay(self):
        sw = BlockCrosspoint(4, 4, block=2, seed=17)
        stats = sw.run(FixedPermutation([2, 3, 0, 1]), 200)
        assert stats.mean_delay == pytest.approx(0.0)
