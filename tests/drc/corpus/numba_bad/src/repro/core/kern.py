import numpy as np

try:
    from numba import njit
except ImportError:
    def njit(func):
        return func


def helper(x):
    return x + 1


@njit
def kernel(a, n):
    total = 0
    for i in range(n):
        total = total + helper(int(a[i]))
    shape = {}
    label = "done"
    extra = np.unique(a)
    return total + len(shape) + len(label) + len(extra)
