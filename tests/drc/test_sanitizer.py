"""Unit and integration tests for the runtime invariant sanitizer.

The seeded-fault tests against the checked kernel live in
``tests/core/test_failure_injection.py``; this file covers the sanitizer
as a component (hooks, halt modes, pickling, telemetry export), the
kernel parity guarantee (checked and fast kernels produce identical
sanitizer summaries), and the scenario-layer plumbing (``--sanitize``
through ``run_scenario`` and parallel ``ScenarioRunner`` sweeps).
"""

import pickle

import pytest

from repro.core import RenewalPacketSource
from repro.core.fastpath import make_pipelined_switch
from repro.core.switch import PipelinedSwitchConfig
from repro.drc import (
    BANK_CONFLICT,
    CONSERVATION,
    DOUBLE_INITIATION,
    INVARIANTS,
    NULL_SANITIZER,
    NullSanitizer,
    Sanitizer,
    SanitizerError,
)
from repro.scenario import Scenario, ScenarioError, ScenarioRunner, run_scenario
from repro.telemetry import Telemetry
from repro.telemetry.export import render_prometheus


# -- the sanitizer as a component ---------------------------------------------

def test_double_initiation_detected():
    san = Sanitizer()
    san.wave_initiated(5, 1)
    san.wave_initiated(6, 2)  # next cycle: fine
    with pytest.raises(SanitizerError) as ei:
        san.wave_initiated(6, 3)
    assert ei.value.code == DOUBLE_INITIATION
    assert ei.value.cycle == 6
    assert ei.value.context == {"first_packet": 2, "second_packet": 3}


def test_bank_conflict_detected_and_state_rolls_per_cycle():
    san = Sanitizer()
    san.bank_access(1, 0, 4, 10, 0)
    san.bank_access(1, 1, 4, 10, 0)  # different bank, same cycle: fine
    san.bank_access(2, 0, 4, 10, 0)  # same bank, next cycle: fine
    with pytest.raises(SanitizerError) as ei:
        san.bank_access(2, 0, 5, 11, 0)
    assert ei.value.code == BANK_CONFLICT
    assert ei.value.context["bank"] == 0


def test_address_mismatch_keyed_per_quantum():
    san = Sanitizer()
    san.bank_access(1, 0, 4, 10, 0)
    san.bank_access(2, 1, 4, 10, 0)   # quantum 0 stays at address 4
    san.bank_access(9, 0, 7, 10, 1)   # quantum 1 may live elsewhere
    with pytest.raises(SanitizerError) as ei:
        san.bank_access(10, 1, 5, 10, 1)
    err = ei.value
    assert err.code == "DRC203"
    assert err.context["expected_addr"] == 7
    assert err.context["actual_addr"] == 5


def test_conservation_checked_at_end_cycle():
    san = Sanitizer()
    san.packet_injected(0, 1)
    san.packet_injected(0, 2)
    san.end_cycle(0, in_flight=2)  # both buffered: fine
    san.packet_delivered(3, 1)
    with pytest.raises(SanitizerError) as ei:
        san.end_cycle(3, in_flight=0)  # packet 2 vanished
    assert ei.value.code == CONSERVATION
    assert ei.value.context == {
        "injected": 2, "delivered": 1, "dropped": 0, "in_flight": 0,
    }


def test_error_message_and_invariant_text():
    err = SanitizerError(BANK_CONFLICT, 42, "bank M3 accessed twice", bank=3)
    assert "DRC201 at cycle 42" in str(err)
    assert "bank=3" in str(err)
    assert INVARIANTS[BANK_CONFLICT] in str(err)
    assert err.invariant == INVARIANTS[BANK_CONFLICT]


def test_sanitizer_error_pickles_with_context():
    """Sweeps ferry violations across the process pool."""
    err = SanitizerError(CONSERVATION, 7, "ledger off by one",
                         injected=3, delivered=2, dropped=0, in_flight=0)
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, SanitizerError)
    assert clone.code == err.code
    assert clone.cycle == 7
    assert clone.context == err.context
    assert str(clone) == str(err)


def test_null_sanitizer_is_inert():
    assert NULL_SANITIZER.enabled is False
    assert isinstance(NULL_SANITIZER, NullSanitizer)
    NULL_SANITIZER.wave_initiated(0, 1)
    NULL_SANITIZER.wave_initiated(0, 2)  # no double-initiation bookkeeping
    NULL_SANITIZER.bank_access(0, 0, 0, 1, 0)
    NULL_SANITIZER.bank_access(0, 0, 1, 2, 0)  # no conflict either
    NULL_SANITIZER.end_cycle(0, 99)
    assert NULL_SANITIZER.summary()["violations"] == 0


def test_violation_counters_exported_through_telemetry():
    tel = Telemetry.on()
    san = Sanitizer(telemetry=tel, halt=False)
    san.wave_initiated(1, 1)
    san.wave_initiated(1, 2)
    san.wave_initiated(1, 3)
    san.end_cycle(1, 0)
    text = render_prometheus(tel.metrics)
    assert 'repro_sanitizer_violations_total{code="DRC202"} 2' in text
    assert "repro_sanitizer_cycles_total 1" in text


# -- kernel parity ------------------------------------------------------------

def test_checked_and_fast_kernels_agree_on_sanitizer_summary():
    """Both kernels run sanitized over the same traffic: identical ledger,
    zero violations — the fast kernel honours the same invariants."""
    summaries = {}
    for fast in (False, True):
        cfg = PipelinedSwitchConfig(n=4, addresses=16)
        src = RenewalPacketSource(4, cfg.packet_words, 0.9, seed=11)
        san = Sanitizer()
        sw = make_pipelined_switch(cfg, src, fast=fast, sanitizer=san)
        sw.run(2_000)
        summaries[fast] = san.summary()
    assert summaries[False] == summaries[True]
    assert summaries[False]["violations"] == 0
    assert summaries[False]["injected"] > 100


# -- scenario-layer plumbing --------------------------------------------------

def _scenario(arch: str = "pipelined", **over) -> Scenario:
    spec = dict(
        name="san", arch=arch, horizon=600, params={"n": 2, "addresses": 16},
        traffic={"kind": "renewal", "load": 0.7}, seeds=[3],
    )
    spec.update(over)
    return Scenario(**spec)


def test_run_scenario_sanitize_reports_summary():
    result = run_scenario(_scenario(), seed=3, sanitize=True)
    assert result["sanitizer"]["violations"] == 0
    assert result["sanitizer"]["cycles_checked"] == 600
    assert result["sanitizer"]["injected"] > 0


def test_run_scenario_without_sanitize_has_no_summary():
    result = run_scenario(_scenario(), seed=3)
    assert "sanitizer" not in result


def test_slotted_architecture_sanitized():
    result = run_scenario(
        _scenario(arch="shared", params={"n": 4},
                  traffic={"kind": "uniform", "load": 0.7}),
        seed=3, sanitize=True,
    )
    assert result["sanitizer"]["violations"] == 0
    assert result["sanitizer"]["injected"] > 0


def test_sanitize_rejected_for_uninstrumented_architecture():
    with pytest.raises(ScenarioError, match="sanitize"):
        run_scenario(_scenario(arch="wide"), seed=3, sanitize=True)
    with pytest.raises(ScenarioError, match="sanitize"):
        ScenarioRunner(jobs=1, sanitize=True).run(_scenario(arch="wide"))


def test_parallel_sanitized_sweep_bit_identical():
    scenarios = _scenario().expand({"arch": ["pipelined", "pipelined_fast"],
                                    "traffic.load": [0.5, 0.9]})
    sequential = ScenarioRunner(jobs=1, sanitize=True).run(scenarios)
    parallel = ScenarioRunner(jobs=2, sanitize=True).run(scenarios)
    assert parallel == sequential
    assert all(r["sanitizer"]["violations"] == 0 for r in sequential)


def test_sanitized_results_match_unsanitized_numbers():
    """The sanitizer observes; it must never change the simulation."""
    plain = run_scenario(_scenario(), seed=3)
    sanitized = dict(run_scenario(_scenario(), seed=3, sanitize=True))
    sanitized.pop("sanitizer")
    assert sanitized == plain
