"""Multistage (delta/omega) fabrics built from single-chip switch elements.

The paper's introduction: switches "can be the building blocks for larger,
multi-stage switches and networks; our discussion applies equally well to
both uses."  This module provides that use: an omega network of ``stages``
ranks of ``k x k`` switch elements connecting ``n = k**stages`` ports, where
each element is *any* :class:`~repro.switches.base.SlottedSwitch` — so the
paper's architecture comparison can be rerun at fabric scale (bench A3:
shared-buffer elements absorb internal contention that head-of-line blocks
FIFO elements into tree saturation).

Topology: the classic omega construction — a perfect k-shuffle of the ``n``
wires before every rank; rank ``s`` routes each cell by the ``s``-th most
significant base-``k`` digit of its (global) destination.  Cells advance one
rank per slot (store-and-forward per element); an element's internal
buffering and arbitration are whatever the element architecture provides.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.stats import Counter, Histogram
from repro.switches.base import SlottedSwitch
from repro.traffic.base import TrafficSource

_cell_ids = itertools.count()


@dataclass(slots=True)
class FabricCell:
    """End-to-end identity of one cell traversing the fabric."""

    src: int  # global input port
    dst: int  # global output port
    created: int  # injection slot
    delivered: int = -1
    uid: int = field(default_factory=lambda: next(_cell_ids))


def perfect_shuffle(pos: int, n: int, k: int) -> int:
    """The k-way perfect shuffle of ``n`` wires: base-``k`` left rotation of
    the port index's digit string."""
    return (pos * k) % n + (pos * k) // n


class OmegaFabric:
    """An omega network of ``k x k`` switch elements over ``k**stages`` ports.

    Parameters
    ----------
    k:
        Element radix (each element is a ``k x k`` switch).
    stages:
        Number of ranks; the fabric has ``k**stages`` ports.
    element_factory:
        Builds one ``k x k`` element; called ``stages * n/k`` times.
        Elements with finite buffers drop internally — those drops are
        aggregated into :attr:`dropped`.
    """

    def __init__(
        self,
        k: int,
        stages: int,
        element_factory: Callable[[], SlottedSwitch],
    ) -> None:
        if k < 2 or stages < 1:
            raise ValueError(f"need k >= 2 and stages >= 1, got k={k}, stages={stages}")
        self.k = k
        self.stages = stages
        self.n = k**stages
        self.elements: list[list[SlottedSwitch]] = []
        per_rank = self.n // k
        for _ in range(stages):
            rank = []
            for _ in range(per_rank):
                element = element_factory()
                if element.n_in != k or element.n_out != k:
                    raise ValueError(
                        f"element must be {k}x{k}, got "
                        f"{element.n_in}x{element.n_out}"
                    )
                rank.append(element)
            self.elements.append(rank)
        # Wires entering each rank (post-shuffle), as FabricCell or None.
        self._rank_inputs: list[list[FabricCell | None]] = [
            [None] * self.n for _ in range(stages)
        ]
        self.slot = 0
        self.warmup = 0
        # -- statistics ---------------------------------------------------------
        self.offered = 0
        self.delivered = 0
        self.misrouted = 0  # would indicate a wiring bug; must stay 0
        self.delay = Counter()
        self.delay_hist = Histogram()
        self.delivered_per_output = [0] * self.n

    # -- helpers ----------------------------------------------------------------
    def _digit(self, dst: int, stage: int) -> int:
        """Base-k digit of ``dst`` used by ``stage`` (most significant first)."""
        shift = self.stages - 1 - stage
        return (dst // (self.k**shift)) % self.k

    @property
    def dropped(self) -> int:
        """Cells lost inside elements (finite element buffers)."""
        return sum(e.stats.dropped for rank in self.elements for e in rank)

    def in_flight(self) -> int:
        buffered = sum(e.occupancy() for rank in self.elements for e in rank)
        wired = sum(
            1 for rank in self._rank_inputs for cell in rank if cell is not None
        )
        return buffered + wired

    # -- one slot -----------------------------------------------------------------
    def step(self, dests: list[int | None]) -> list[FabricCell | None]:
        """Advance one slot: inject ``dests`` and move every rank once."""
        if len(dests) != self.n:
            raise ValueError(f"expected {self.n} arrival entries, got {len(dests)}")
        # External arrivals shuffle into rank 0, on top of last slot's wires.
        injected: list[FabricCell | None] = [None] * self.n
        for p, dst in enumerate(dests):
            if dst is None:
                continue
            if not 0 <= dst < self.n:
                raise ValueError(f"destination {dst} out of range")
            cell = FabricCell(src=p, dst=dst, created=self.slot)
            if self.slot >= self.warmup:
                self.offered += 1
            wire = perfect_shuffle(p, self.n, self.k)
            if self._rank_inputs[0][wire] is not None:
                raise AssertionError("rank-0 wire already carries a cell")
            self._rank_inputs[0][wire] = cell
        del injected

        delivered: list[FabricCell | None] = [None] * self.n
        next_inputs: list[list[FabricCell | None]] = [
            [None] * self.n for _ in range(self.stages)
        ]
        for s in range(self.stages):
            rank_in = self._rank_inputs[s]
            for e, element in enumerate(self.elements[s]):
                base = e * self.k
                cells = [rank_in[base + i] for i in range(self.k)]
                local = [
                    self._digit(c.dst, s) if c is not None else None for c in cells
                ]
                outs = element.step(local, tags=cells)
                for j, out in enumerate(outs):
                    if out is None:
                        continue
                    cell = out.tag
                    assert isinstance(cell, FabricCell)
                    pos = base + j
                    if s == self.stages - 1:
                        if pos != cell.dst:
                            self.misrouted += 1
                        delivered[pos] = cell
                        cell.delivered = self.slot
                        if cell.created >= self.warmup:
                            self.delivered += 1
                            self.delivered_per_output[pos] += 1
                            d = self.slot - cell.created
                            self.delay.add(d)
                            self.delay_hist.add(d)
                    else:
                        wire = perfect_shuffle(pos, self.n, self.k)
                        next_inputs[s + 1][wire] = cell
        # Rank-0 wires for next slot start empty (arrivals fill them).
        self._rank_inputs = next_inputs
        self.slot += 1
        return delivered

    def run(self, source: TrafficSource, slots: int) -> None:
        if source.n_in != self.n or source.n_out != self.n:
            raise ValueError(
                f"source is {source.n_in}x{source.n_out}, fabric is "
                f"{self.n}x{self.n}"
            )
        for _ in range(slots):
            self.step(source.arrivals(self.slot))

    def drain(self, max_slots: int = 100_000) -> int:
        start = self.slot
        empty = [None] * self.n
        while self.in_flight() > 0:
            if self.slot - start > max_slots:
                raise RuntimeError("fabric failed to drain")
            self.step(list(empty))
        return self.slot - start

    # -- metrics -------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        measured = self.slot - self.warmup
        if measured <= 0:
            return math.nan
        return self.delivered / (measured * self.n)

    @property
    def loss_probability(self) -> float:
        if self.offered == 0:
            return math.nan
        return self.dropped / self.offered

    def summary(self) -> dict[str, float]:
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "throughput": self.throughput,
            "loss_probability": self.loss_probability,
            "mean_delay": self.delay.mean,
            "misrouted": self.misrouted,
        }
