"""Property test: Scenario -> dump -> load -> re-run is bit-identical.

A scenario file must be a *complete* description of a run: serializing a
scenario to JSON or TOML, loading it back, and re-running it has to
reproduce the original statistics bit for bit — and the telemetry event
stream too — on both the checked and the fast kernel.  Drift here means
the spec is lossy and saved experiment files silently lie.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.scenario import Scenario, load_scenarios, prepare, run_scenario  # noqa: E402

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

@st.composite
def scenarios(draw) -> Scenario:
    arch = draw(st.sampled_from(["pipelined", "pipelined_fast"]))
    # the fast kernel models only the paper's reads-first arbitration;
    # the ablation policies exist on the checked kernel alone
    priority = "reads_first" if arch == "pipelined_fast" else draw(
        st.sampled_from(["reads_first", "writes_first", "oldest_first"]))
    return Scenario(
        name="prop",
        arch=arch,
        horizon=draw(st.integers(min_value=200, max_value=600)),
        params={
            "n": draw(st.sampled_from([2, 4])),
            "addresses": draw(st.sampled_from([16, 32])),
            "quanta": draw(st.sampled_from([1, 2])),
            "cut_through": draw(st.booleans()),
            "priority": priority,
        },
        traffic={
            "kind": "renewal",
            "load": draw(st.sampled_from([0.4, 0.8, 1.0])),
        },
        seeds=tuple(draw(st.lists(st.integers(min_value=0, max_value=50),
                                  min_size=1, max_size=2, unique=True))),
        warmup=draw(st.sampled_from([None, 0, 50])),
        drain=draw(st.booleans()),
    )


@pytest.mark.parametrize("suffix", [".json", ".toml"])
@SETTINGS
@given(scenario=scenarios(), data=st.data())
def test_dump_load_rerun_bit_identical(tmp_path_factory, suffix, scenario, data):
    seed = data.draw(st.sampled_from(scenario.seeds), label="seed")
    path = tmp_path_factory.mktemp("rt") / f"scenario{suffix}"
    scenario.dump(path)
    loaded = load_scenarios(path)
    assert loaded == [scenario], "serialization must be lossless"

    first = run_scenario(scenario, seed)
    again = run_scenario(loaded[0], seed)
    assert again == first, "a reloaded scenario must reproduce the run"


@SETTINGS
@given(scenario=scenarios())
def test_reloaded_telemetry_events_identical(tmp_path_factory, scenario):
    from repro.telemetry import Telemetry

    path = tmp_path_factory.mktemp("tel") / "scenario.json"
    scenario.dump(path)
    loaded = load_scenarios(path)[0]

    streams = []
    for sc in (scenario, loaded):
        tel = Telemetry.on(sample_interval=32)
        prep = prepare(sc, telemetry=tel)
        prep.execute()
        streams.append((tel.events.sorted_events(), tel.samples,
                        tel.metrics.as_dict()))
    assert streams[0] == streams[1]
