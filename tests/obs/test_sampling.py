"""Seed-stable packet sampling: determinism, uniformity, nesting."""

from __future__ import annotations

import pytest

from repro.obs.sampling import (
    SampledEventLog,
    is_sampled,
    packet_hash,
    sample_threshold,
)


class TestPacketHash:
    def test_pure_function_of_seed_and_uid(self):
        assert packet_hash(7, 123) == packet_hash(7, 123)
        assert packet_hash(7, 123) != packet_hash(8, 123)
        assert packet_hash(7, 123) != packet_hash(7, 124)

    def test_64_bit_range(self):
        for uid in range(2000):
            h = packet_hash(3, uid)
            assert 0 <= h < (1 << 64)

    def test_roughly_uniform(self):
        """The realized fraction tracks the rate for sequential uids —
        that is what makes `trace_sample` a rate and not a lottery."""
        n = 20_000
        for rate in (0.05, 0.2, 0.5):
            hits = sum(is_sampled(1, uid, rate) for uid in range(n))
            assert abs(hits / n - rate) < 0.02

    def test_known_vector_pinned(self):
        """The hash is part of the cross-process contract: a silent change
        would silently re-select every sampled trace."""
        assert packet_hash(0, 0) == 16294208416658607535
        assert packet_hash(1, 1) == 13757245211066428519


class TestThreshold:
    def test_edges(self):
        assert sample_threshold(0.0) == 0
        assert sample_threshold(1.0) == 1 << 64

    @pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan")])
    def test_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError):
            sample_threshold(rate)

    def test_rate_zero_and_one(self):
        assert not any(is_sampled(5, uid, 0.0) for uid in range(100))
        assert all(is_sampled(5, uid, 1.0) for uid in range(100))


class TestNesting:
    def test_lower_rate_is_subset_of_higher(self):
        uids = range(5000)
        low = {u for u in uids if is_sampled(9, u, 0.05)}
        high = {u for u in uids if is_sampled(9, u, 0.30)}
        assert low <= high
        assert low and high - low  # both rates are non-degenerate here


class TestSampledEventLog:
    def test_filters_at_emit_time(self):
        log = SampledEventLog(0.2, seed=4)
        for uid in range(500):
            log.emit(uid, "arrive", uid, src=0, dst=1)
        kept = {e.uid for e in log.events}
        assert kept == {u for u in range(500) if log.sampled(u)}
        assert 0 < len(kept) < 500

    def test_reemitting_filtered_stream_is_idempotent(self):
        """Checkpoint restore replays saved (already filtered) events
        through a fresh SampledEventLog: nothing may be lost or added."""
        log = SampledEventLog(0.3, seed=2)
        for uid in range(300):
            log.emit(uid, "arrive", uid)
        replay = SampledEventLog(0.3, seed=2)
        for e in log.events:
            replay.emit(e.cycle, e.kind, e.uid, e.src, e.dst, e.cause, e.aux)
        assert replay.sorted_events() == log.sorted_events()
